package mapa

import (
	"fmt"
	"math/rand"
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/jobs"
	"mapa/internal/match"
	"mapa/internal/policy"
	"mapa/internal/sched"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// traceConfig selects one match-pipeline configuration for a parity
// run.
type traceConfig struct {
	workers   int
	cached    bool // tier-2 filtered-view cache
	universes bool // tier-1 idle-state universe store
	noviews   bool // disable the tier-0 live views layered on the store
	warm      bool // prewarm universes for the job-mix shapes
}

// allocationTrace runs the job list through a freshly configured
// engine and renders every record's allocation-relevant fields, so two
// traces compare byte-identically only if every decision matched. The
// engine is returned for counter inspection.
func allocationTrace(t *testing.T, top *topology.Topology, policyName string, jobList []jobs.Job, cfg traceConfig) ([]string, *sched.Engine) {
	t.Helper()
	scorer := score.NewScorer(effbw.TrainedFor(top))
	p, err := policy.ByName(policyName, scorer)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.workers > 1 {
		policy.SetParallelism(p, cfg.workers)
	}
	e := sched.NewEngine(top, p)
	e.DisableLiveViews = cfg.noviews
	if !cfg.cached {
		e.Cache = nil
	}
	if !cfg.universes {
		e.Universes = nil
	} else if cfg.warm {
		e.Universes.Warm(cfg.workers, appgraph.AllShapes(5)...)
	}
	res, err := e.Run(jobList)
	if err != nil {
		t.Fatal(err)
	}
	trace := make([]string, len(res.Records))
	for i, r := range res.Records {
		trace[i] = fmt.Sprintf("job=%d gpus=%v start=%.6f end=%.6f agg=%.6f eff=%.6f pres=%.6f",
			r.Job.ID, r.GPUs, r.Start, r.End, r.AggBW, r.PredictedEffBW, r.PreservedBW)
	}
	return trace, e
}

// TestCachedAndParallelMatchSequentialAllocations is the acceptance
// check for the match-pipeline rework: on the integration-test
// workloads, every fast path — the tier-2 cached path, the worker-pool
// parallel path, the universe-filtered path (with and without tier-0
// live views), and the warmed pipeline — must produce byte-identical
// allocation sequences to the plain sequential matcher.
func TestCachedAndParallelMatchSequentialAllocations(t *testing.T) {
	cases := []struct {
		topo   string
		policy string
		njobs  int
	}{
		{"dgx-v100", "preserve", 150},
		{"dgx-v100", "greedy", 150},
		{"dgx-a100", "preserve", 100},
		{"torus-2d", "preserve", 60},
	}
	for _, tc := range cases {
		t.Run(tc.topo+"/"+tc.policy, func(t *testing.T) {
			top, err := topology.ByName(tc.topo)
			if err != nil {
				t.Fatal(err)
			}
			jobList := jobs.PaperMix(1)[:tc.njobs]

			sequential, _ := allocationTrace(t, top, tc.policy, jobList, traceConfig{workers: 1})
			compare := func(name string, got []string) {
				t.Helper()
				if len(got) != len(sequential) {
					t.Fatalf("%s produced %d records, sequential %d", name, len(got), len(sequential))
				}
				for i := range sequential {
					if got[i] != sequential[i] {
						t.Fatalf("%s diverged from sequential at record %d:\n  seq: %s\n  got: %s",
							name, i, sequential[i], got[i])
					}
				}
			}

			cachedTrace, cachedEng := allocationTrace(t, top, tc.policy, jobList, traceConfig{workers: 1, cached: true})
			compare("cached", cachedTrace)
			parallel, _ := allocationTrace(t, top, tc.policy, jobList, traceConfig{workers: 4})
			compare("parallel", parallel)
			both, _ := allocationTrace(t, top, tc.policy, jobList, traceConfig{workers: 4, cached: true})
			compare("cached+parallel", both)
			viewed, viewEng := allocationTrace(t, top, tc.policy, jobList, traceConfig{workers: 1, universes: true})
			compare("live views (store only)", viewed)
			filtered, filterEng := allocationTrace(t, top, tc.policy, jobList,
				traceConfig{workers: 1, universes: true, noviews: true})
			compare("filtered (store only, no views)", filtered)
			warmed, warmEng := allocationTrace(t, top, tc.policy, jobList,
				traceConfig{workers: 1, cached: true, universes: true, warm: true})
			compare("warmed pipeline", warmed)
			warmedPar, _ := allocationTrace(t, top, tc.policy, jobList,
				traceConfig{workers: 4, cached: true, universes: true, warm: true})
			compare("warmed pipeline parallel", warmedPar)

			// The cache must actually be doing the work: steady-state
			// scheduling revisits availability states.
			if st := cachedEng.Cache.Stats(); st.Hits == 0 {
				t.Fatalf("embedding cache saw no hits over %d jobs: %+v", tc.njobs, st)
			}
			// Live views must be serving every miss on the store-only
			// run (tier 0 sits in front of the filter path)…
			if vs := viewEng.Views.Stats(); vs.Served == 0 {
				t.Fatalf("live views served no decisions over %d jobs: %+v", tc.njobs, vs)
			}
			if st := viewEng.Universes.Stats(); st.FilterServed != 0 {
				t.Fatalf("live-view run fell back to %d universe scans: %+v", st.FilterServed, st)
			}
			// …and with views disabled the universes must be filtering:
			// cold misses (store-only: every decision) are filter-served.
			if st := filterEng.Universes.Stats(); st.FilterServed == 0 {
				t.Fatalf("universe store served no filters over %d jobs: %+v", tc.njobs, st)
			}
			if st, vs := warmEng.Universes.Stats(), warmEng.Views.Stats(); st.Universes == 0 || vs.Served == 0 {
				t.Fatalf("warmed pipeline did not serve the run: store %+v views %+v", st, vs)
			}
		})
	}
}

// TestSystemSteadyStateUsesCache verifies the live-allocator wiring of
// the two steady-state fast paths: by default, allocate/release cycling
// is served entirely by the table path (precomputed score tables over
// the live views — zero dynamic score evaluations); with score tables
// disabled, a cycle returning to a previously seen availability state
// hits the tier-2 cache instead. Decisions are identical either way.
func TestSystemSteadyStateUsesCache(t *testing.T) {
	cycle := func(t *testing.T, s *System) *Lease {
		t.Helper()
		req := JobRequest{NumGPUs: 3, Shape: "Ring", Sensitive: true}
		var first *Lease
		for i := 0; i < 5; i++ {
			l, err := s.Allocate(req)
			if err != nil {
				t.Fatal(err)
			}
			if first == nil {
				first = l
			} else if fmt.Sprint(l.GPUs) != fmt.Sprint(first.GPUs) {
				t.Fatalf("iteration %d allocated %v, first %v — decisions must be reproducible", i, l.GPUs, first.GPUs)
			}
			if err := s.Release(l); err != nil {
				t.Fatal(err)
			}
		}
		return first
	}

	tabled, err := NewSystem("dgx-v100", "preserve")
	if err != nil {
		t.Fatal(err)
	}
	lt := cycle(t, tabled)
	if st := tabled.CacheStats(); st.TableServed == 0 || st.ScoreTables == 0 {
		t.Fatalf("steady-state cycling was not table-served: %+v", st)
	}

	cached, err := NewSystem("dgx-v100", "preserve", WithoutScoreTables())
	if err != nil {
		t.Fatal(err)
	}
	lc := cycle(t, cached)
	if st := cached.CacheStats(); st.Hits == 0 {
		t.Fatalf("steady-state cycling produced no cache hits: %+v", st)
	}
	if st := cached.CacheStats(); st.TableServed != 0 || st.ScoreTables != 0 {
		t.Fatalf("WithoutScoreTables still built or served tables: %+v", st)
	}
	if fmt.Sprint(lt.GPUs) != fmt.Sprint(lc.GPUs) ||
		lt.EffBW != lc.EffBW || lt.AggBW != lc.AggBW || lt.PreservedBW != lc.PreservedBW {
		t.Fatalf("table-served and cache-served decisions diverged:\n table: %+v\n cache: %+v", lt, lc)
	}
}

// TestSystemWarmedServesFirstDecisionByFilter verifies the public
// warming option end to end: a warmed System answers its very first
// request for a warmed shape from the universe — via the tier-0 live
// view by default, by mask filtering under WithoutLiveViews — never
// from a search.
func TestSystemWarmedServesFirstDecisionByFilter(t *testing.T) {
	s, err := NewSystem("dgx-v100", "preserve", WithWarmShapes(5))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Universes == 0 {
		t.Fatalf("WithWarmShapes built no universes: %+v", st)
	}
	if _, err := s.Allocate(JobRequest{NumGPUs: 4, Shape: "Ring", Sensitive: true}); err != nil {
		t.Fatal(err)
	}
	st := s.CacheStats()
	if st.ViewServed == 0 {
		t.Fatalf("first decision was not view-served: %+v", st)
	}
	noViews, err := NewSystem("dgx-v100", "preserve", WithWarmShapes(5), WithoutLiveViews())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noViews.Allocate(JobRequest{NumGPUs: 4, Shape: "Ring", Sensitive: true}); err != nil {
		t.Fatal(err)
	}
	if st := noViews.CacheStats(); st.FilterServed == 0 || st.ViewServed != 0 {
		t.Fatalf("WithoutLiveViews first decision was not filter-served: %+v", st)
	}
	// The warmed System must agree with an unwarmed one.
	plain, err := NewSystem("dgx-v100", "preserve", WithoutCache(), WithoutUniverses())
	if err != nil {
		t.Fatal(err)
	}
	lw, err := plain.Allocate(JobRequest{NumGPUs: 4, Shape: "Ring", Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSystem("dgx-v100", "preserve", WithWarmShapes(5))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := s2.Allocate(JobRequest{NumGPUs: 4, Shape: "Ring", Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(l2.GPUs) != fmt.Sprint(lw.GPUs) {
		t.Fatalf("warmed system allocated %v, plain %v", l2.GPUs, lw.GPUs)
	}
}

// TestSystemBackgroundWarmingParity verifies the overlap option: a
// System built with WithBackgroundWarming serves decisions immediately
// (on-demand builds share the warmer's sync.Once — never duplicated),
// WaitWarm parks until the warm set is resident, and every decision is
// byte-identical to a synchronously warmed System's.
func TestSystemBackgroundWarmingParity(t *testing.T) {
	sync1, err := NewSystem("dgx-v100", "preserve", WithWarmShapes(5), WithBuildWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	bg, err := NewSystem("dgx-v100", "preserve", WithWarmShapes(5), WithBuildWorkers(4), WithBackgroundWarming())
	if err != nil {
		t.Fatal(err)
	}
	// Decide while warming may still be in flight.
	req := JobRequest{NumGPUs: 4, Shape: "Ring", Sensitive: true}
	lSync, err := sync1.Allocate(req)
	if err != nil {
		t.Fatal(err)
	}
	lBg, err := bg.Allocate(req)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(lBg.GPUs) != fmt.Sprint(lSync.GPUs) {
		t.Fatalf("background-warmed system allocated %v, synchronous %v", lBg.GPUs, lSync.GPUs)
	}
	bg.WaitWarm()
	bg.WaitWarm() // idempotent
	stSync, stBg := sync1.CacheStats(), bg.CacheStats()
	if stBg.Universes != stSync.Universes {
		t.Fatalf("after WaitWarm %d universes, synchronous warm %d", stBg.Universes, stSync.Universes)
	}
	if stBg.UniverseBuildTime <= 0 || stSync.UniverseBuildTime <= 0 {
		t.Fatalf("universe build time not surfaced: bg=%v sync=%v", stBg.UniverseBuildTime, stSync.UniverseBuildTime)
	}
	// WaitWarm on a system without background warming returns at once.
	sync1.WaitWarm()
}

// liveViewChurnVerify asserts the three-way byte-identity the live
// views guarantee: the delta-maintained candidate list, the
// full-universe mask filter, and a fresh deduplicated search on the
// induced availability subgraph must agree on indices, keys, and
// representative assignment sequences.
func liveViewChurnVerify(t *testing.T, u *match.Universe, lv *match.LiveView, top *topology.Topology, pattern *graph.Graph, free []int, step string) {
	t.Helper()
	avail := top.Graph.InducedSubgraph(free)
	fidx, _ := u.Filter(avail.VertexBitset(), 0)
	lidx, _ := lv.Candidates(0)
	if len(lidx) != len(fidx) {
		t.Fatalf("%s: live view kept %d candidates, Filter %d", step, len(lidx), len(fidx))
	}
	for j := range fidx {
		if lidx[j] != fidx[j] {
			t.Fatalf("%s candidate %d: live view index %d, Filter %d", step, j, lidx[j], fidx[j])
		}
	}
	ms, keys := match.FindAllDedupedCappedKeys(pattern, avail, 0)
	if len(ms) != len(lidx) {
		t.Fatalf("%s: fresh search found %d classes, live view %d", step, len(ms), len(lidx))
	}
	for j, i := range lidx {
		if u.Key(i) != keys[j] {
			t.Fatalf("%s class %d: live-view key %q, search key %q", step, j, u.Key(i), keys[j])
		}
		got := u.Match(i)
		for d := range ms[j].Data {
			if got.Data[d] != ms[j].Data[d] || got.Pattern[d] != ms[j].Pattern[d] {
				t.Fatalf("%s class %d: representative differs:\n got %v->%v\nwant %v->%v",
					step, j, got.Pattern, got.Data, ms[j].Pattern, ms[j].Data)
			}
		}
	}
}

// TestLiveViewChurnParityRandomized is the headline churn-parity
// suite: >=500 seeded, interleaved allocate/release steps on the
// DGX-A100 and on the 9-node 72-GPU cluster (whose masks span multiple
// bitset words), with the live view, Universe.Filter, and a fresh
// FindAllDedupedCapped search cross-checked byte-for-byte after every
// single step.
func TestLiveViewChurnParityRandomized(t *testing.T) {
	cases := []struct {
		name              string
		top               *topology.Topology
		steps             int
		freeLow, freeHigh int
	}{
		// The DGX churns across its whole range; the cluster churns in
		// a mostly-busy window (the realistic multi-tenant regime) so
		// the per-step oracle search stays tractable while free masks
		// still straddle the 64-bit word boundary.
		{"dgx-a100", topology.DGXA100(), 500, 2, 8},
		{"cluster-a100", topology.ClusterA100(9), 500, 8, 18},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pattern := appgraph.Ring(3)
			u := match.BuildUniverse(pattern, tc.top.Graph, 0, 1)
			if !u.Complete() {
				t.Fatal("idle-state universe must be complete")
			}
			lv := match.NewLiveView(u, tc.top.Graph.VertexBitset())
			rng := rand.New(rand.NewSource(99))

			free := append([]int(nil), tc.top.GPUs()...)
			var deltas [][]int // outstanding allocations, released in random order
			takeFree := func(k int) []int {
				out := make([]int, 0, k)
				for len(out) < k {
					i := rng.Intn(len(free))
					out = append(out, free[i])
					free[i] = free[len(free)-1]
					free = free[:len(free)-1]
				}
				return out
			}
			// Drain the machine into the churn window before the
			// measured steps (setup, not asserted per step).
			for len(free) > tc.freeHigh {
				k := 1 + rng.Intn(4)
				if len(free)-k < tc.freeLow {
					k = len(free) - tc.freeLow
				}
				d := takeFree(k)
				deltas = append(deltas, d)
				lv.Allocate(d)
			}
			for step := 0; step < tc.steps; step++ {
				k := 1 + rng.Intn(3)
				release := len(free)-k < tc.freeLow ||
					(len(free)+1 <= tc.freeHigh && len(deltas) > 0 && rng.Intn(2) == 0)
				if release {
					i := rng.Intn(len(deltas))
					d := deltas[i]
					deltas[i] = deltas[len(deltas)-1]
					deltas = deltas[:len(deltas)-1]
					lv.Release(d)
					free = append(free, d...)
				} else {
					d := takeFree(k)
					deltas = append(deltas, d)
					lv.Allocate(d)
				}
				liveViewChurnVerify(t, u, lv, tc.top, pattern, free, fmt.Sprintf("step %d", step))
			}
			// Full drain must restore the idle view exactly.
			for _, d := range deltas {
				lv.Release(d)
				free = append(free, d...)
			}
			liveViewChurnVerify(t, u, lv, tc.top, pattern, free, "after drain")
			if lv.Len() != u.Len() {
				t.Fatalf("drained view holds %d live classes, universe %d", lv.Len(), u.Len())
			}
		})
	}
}
