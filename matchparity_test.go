package mapa

import (
	"fmt"
	"testing"

	"mapa/internal/effbw"
	"mapa/internal/jobs"
	"mapa/internal/matchcache"
	"mapa/internal/policy"
	"mapa/internal/sched"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// allocationTrace runs the job list through a freshly configured
// engine and renders every record's allocation-relevant fields, so two
// traces compare byte-identically only if every decision matched.
func allocationTrace(t *testing.T, top *topology.Topology, policyName string, jobList []jobs.Job, workers int, cached bool) ([]string, *matchcache.Cache) {
	t.Helper()
	scorer := score.NewScorer(effbw.TrainedFor(top))
	p, err := policy.ByName(policyName, scorer)
	if err != nil {
		t.Fatal(err)
	}
	if workers > 1 {
		policy.SetParallelism(p, workers)
	}
	e := sched.NewEngine(top, p)
	if !cached {
		e.Cache = nil
	}
	res, err := e.Run(jobList)
	if err != nil {
		t.Fatal(err)
	}
	trace := make([]string, len(res.Records))
	for i, r := range res.Records {
		trace[i] = fmt.Sprintf("job=%d gpus=%v start=%.6f end=%.6f agg=%.6f eff=%.6f pres=%.6f",
			r.Job.ID, r.GPUs, r.Start, r.End, r.AggBW, r.PredictedEffBW, r.PreservedBW)
	}
	return trace, e.Cache
}

// TestCachedAndParallelMatchSequentialAllocations is the acceptance
// check for the bitset/cache/parallel matcher rework: on the
// integration-test workloads, the embedding-cached path and the
// worker-pool parallel path must produce byte-identical allocation
// sequences to the sequential matcher.
func TestCachedAndParallelMatchSequentialAllocations(t *testing.T) {
	cases := []struct {
		topo   string
		policy string
		njobs  int
	}{
		{"dgx-v100", "preserve", 150},
		{"dgx-v100", "greedy", 150},
		{"dgx-a100", "preserve", 100},
		{"torus-2d", "preserve", 60},
	}
	for _, tc := range cases {
		t.Run(tc.topo+"/"+tc.policy, func(t *testing.T) {
			top, err := topology.ByName(tc.topo)
			if err != nil {
				t.Fatal(err)
			}
			jobList := jobs.PaperMix(1)[:tc.njobs]

			sequential, _ := allocationTrace(t, top, tc.policy, jobList, 1, false)
			cachedTrace, cache := allocationTrace(t, top, tc.policy, jobList, 1, true)
			parallel, _ := allocationTrace(t, top, tc.policy, jobList, 4, false)
			both, _ := allocationTrace(t, top, tc.policy, jobList, 4, true)

			compare := func(name string, got []string) {
				t.Helper()
				if len(got) != len(sequential) {
					t.Fatalf("%s produced %d records, sequential %d", name, len(got), len(sequential))
				}
				for i := range sequential {
					if got[i] != sequential[i] {
						t.Fatalf("%s diverged from sequential at record %d:\n  seq: %s\n  got: %s",
							name, i, sequential[i], got[i])
					}
				}
			}
			compare("cached", cachedTrace)
			compare("parallel", parallel)
			compare("cached+parallel", both)

			// The cache must actually be doing the work: steady-state
			// scheduling revisits availability states.
			if st := cache.Stats(); st.Hits == 0 {
				t.Fatalf("embedding cache saw no hits over %d jobs: %+v", tc.njobs, st)
			}
		})
	}
}

// TestSystemSteadyStateUsesCache verifies the live-allocator wiring:
// an allocate/release cycle returns to a previously seen availability
// state and the next identical request hits the cache.
func TestSystemSteadyStateUsesCache(t *testing.T) {
	s, err := NewSystem("dgx-v100", "preserve")
	if err != nil {
		t.Fatal(err)
	}
	req := JobRequest{NumGPUs: 3, Shape: "Ring", Sensitive: true}
	var first *Lease
	for i := 0; i < 5; i++ {
		l, err := s.Allocate(req)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = l
		} else {
			if fmt.Sprint(l.GPUs) != fmt.Sprint(first.GPUs) {
				t.Fatalf("iteration %d allocated %v, first %v — decisions must be reproducible", i, l.GPUs, first.GPUs)
			}
		}
		if err := s.Release(l); err != nil {
			t.Fatal(err)
		}
	}
}
