// Benchmark harness regenerating every table and figure of the MAPA
// paper's evaluation. Each benchmark times the underlying experiment
// and, on completion, prints the reproduced rows/series so that
//
//	go test -bench=. -benchmem
//
// emits the full reproduction report (see EXPERIMENTS.md for the
// paper-vs-measured comparison). Shapes — who wins, by what factor,
// where crossovers fall — are the reproduction target, not absolute
// numbers: the substrate is a simulator, not the authors' testbed.
package mapa

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"mapa/internal/appgraph"
	"mapa/internal/effbw"
	"mapa/internal/graph"
	"mapa/internal/jobs"
	"mapa/internal/match"
	"mapa/internal/matchcache"
	"mapa/internal/ncclsim"
	"mapa/internal/policy"
	"mapa/internal/regress"
	"mapa/internal/sched"
	"mapa/internal/score"
	"mapa/internal/stats"
	"mapa/internal/topology"
	"mapa/internal/workload"
)

// testingNow returns a monotonic timestamp in milliseconds for
// measuring per-decision latency inside a benchmark iteration.
func testingNow() float64 { return float64(time.Now().UnixNano()) / 1e6 }

var (
	reportedMu sync.Mutex
	reported   = make(map[string]bool)
)

// report prints an experiment block exactly once per benchmark, even
// though the framework may invoke the benchmark function several
// times while calibrating b.N.
func report(b *testing.B, header string, body func()) {
	b.Helper()
	reportedMu.Lock()
	defer reportedMu.Unlock()
	if reported[header] {
		return
	}
	reported[header] = true
	fmt.Printf("\n===== %s =====\n", header)
	body()
}

// BenchmarkTable1PeakBandwidths regenerates Table 1: peak bandwidth
// per link type.
func BenchmarkTable1PeakBandwidths(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, l := range topology.AllLinkTypes() {
			sink += l.Bandwidth()
		}
	}
	_ = sink
	report(b, "Table 1 — peak bandwidths per link", func() {
		for _, l := range []topology.LinkType{topology.LinkNVLink1, topology.LinkNVLink2, topology.LinkNVLink2x2, topology.LinkPCIe} {
			fmt.Printf("  %-22s %5.0f GB/s\n", l.Name(), l.Bandwidth())
		}
	})
}

// BenchmarkFig2aBandwidthCharacterization regenerates Fig. 2a:
// achieved all-reduce bandwidth vs transfer size per link class on a
// DGX-V GPU pair.
func BenchmarkFig2aBandwidthCharacterization(b *testing.B) {
	top := topology.DGXV100()
	pairs := map[string][]int{
		"NV2-Double": {0, 4},
		"NV2-Single": {0, 1},
		"PCIe":       {0, 5},
	}
	sizes := []float64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, gpus := range pairs {
			for _, s := range sizes {
				sink += ncclsim.EffectiveBandwidth(top, gpus, s)
			}
		}
	}
	b.StopTimer()
	_ = sink
	report(b, "Fig. 2a — bandwidth vs data size (GB/s)", func() {
		fmt.Printf("  %-12s", "bytes")
		for _, s := range sizes {
			fmt.Printf("%10.0e", s)
		}
		fmt.Println()
		for _, name := range []string{"NV2-Double", "NV2-Single", "PCIe"} {
			fmt.Printf("  %-12s", name)
			for _, s := range sizes {
				fmt.Printf("%10.1f", ncclsim.EffectiveBandwidth(top, pairs[name], s))
			}
			fmt.Println()
		}
	})
}

// BenchmarkFig2bLinkSpeedup regenerates Fig. 2b: per-network training
// speedup on faster links relative to PCIe at 2 GPUs.
func BenchmarkFig2bLinkSpeedup(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, w := range workload.CNNs() {
			sink += w.SpeedupOverPCIe(topology.LinkNVLink2x2)
		}
	}
	_ = sink
	report(b, "Fig. 2b — network speedup vs PCIe (2 GPUs)", func() {
		fmt.Printf("  %-14s %12s %12s\n", "network", "NV2-Double", "NV2-Single")
		for _, w := range workload.CNNs() {
			fmt.Printf("  %-14s %12.2f %12.2f\n", w.Name,
				w.SpeedupOverPCIe(topology.LinkNVLink2x2),
				w.SpeedupOverPCIe(topology.LinkNVLink2))
		}
	})
}

// BenchmarkFig3Top500Trend reprints Fig. 3's survey data (static; the
// paper's motivation, not an experiment of the system itself).
func BenchmarkFig3Top500Trend(b *testing.B) {
	type yearRow struct {
		year               int
		gpu, other         int
		heterogeneousRatio float64
	}
	// Values digitized from Fig. 3 of the paper.
	data := []yearRow{
		{2017, 95, 7, 0.30},
		{2018, 122, 6, 0.45},
		{2019, 135, 10, 0.60},
		{2020, 141, 8, 0.75},
		{2021, 150, 9, 0.85},
	}
	var sink int
	for i := 0; i < b.N; i++ {
		for _, r := range data {
			sink += r.gpu
		}
	}
	_ = sink
	report(b, "Fig. 3 — Top500 accelerator systems (survey data from the paper)", func() {
		fmt.Printf("  %-6s %10s %10s %22s\n", "year", "GPU", "others", "heterogeneous ratio")
		for _, r := range data {
			fmt.Printf("  %-6d %10d %10d %21.0f%%\n", r.year, r.gpu, r.other, r.heterogeneousRatio*100)
		}
	})
}

// BenchmarkFig4Fragmentation regenerates Fig. 4: the distribution of
// BW_Allocated / BW_IdealAllocation for 100 baseline-scheduled jobs,
// grouped by GPU count.
func BenchmarkFig4Fragmentation(b *testing.B) {
	top := topology.DGXV100()
	jobList := jobs.PaperMix(4)[:100]
	var results map[int][]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sched.ComparePolicies(top, []string{"baseline"}, jobList)
		if err != nil {
			b.Fatal(err)
		}
		results = sched.FragmentationQuality(top, res["baseline"].Records)
	}
	b.StopTimer()
	report(b, "Fig. 4 — allocation quality under baseline (BW_alloc / BW_ideal)", func() {
		ks := make([]int, 0, len(results))
		for k := range results {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		for _, k := range ks {
			fmt.Printf("  %d GPUs: %s\n", k, stats.Summarize(results[k]))
		}
	})
}

// BenchmarkFig5CommProperties regenerates Fig. 5: the communication
// profile of each CNN (calls per iteration, characteristic transfer
// size, sensitivity annotation).
func BenchmarkFig5CommProperties(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, w := range workload.CNNs() {
			sink += w.BytesPerIter()
		}
	}
	_ = sink
	report(b, "Fig. 5 — communication properties of ML workloads", func() {
		fmt.Printf("  (b) %-14s %16s %14s %12s\n", "network", "comm calls/iter", "msg bytes", "sensitive")
		for _, w := range workload.CNNs() {
			fmt.Printf("      %-14s %16d %14.0f %12v\n", w.Name, w.CommCallsPerIter, w.MsgBytes, w.Sensitive)
		}
		probes := []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
		fmt.Printf("  (a) CDF of raw collective-call sizes:\n      %-14s", "bytes")
		for _, p := range probes {
			fmt.Printf("%8.0e", p)
		}
		fmt.Println()
		for _, w := range workload.CNNs() {
			fmt.Printf("      %-14s", w.Name)
			for _, v := range w.CommSizeCDF(probes) {
				fmt.Printf("%8.2f", v)
			}
			fmt.Println()
		}
	})
}

// BenchmarkFig6IterationTrends regenerates Fig. 6: execution time vs
// iterations for a sensitive (VGG-16) and an insensitive (GoogleNet)
// network on NVLink and PCIe with 2 and 4 GPUs.
func BenchmarkFig6IterationTrends(b *testing.B) {
	nv2 := topology.FullyConnected(2, topology.LinkNVLink2x2)
	pc2 := topology.FullyConnected(2, topology.LinkPCIe)
	nv4 := topology.FullyConnected(4, topology.LinkNVLink2x2)
	pc4 := topology.FullyConnected(4, topology.LinkPCIe)
	iters := []int{1000, 3000, 5000, 7000}
	var sink float64
	vgg, _ := workload.ByName("vgg-16")
	goog, _ := workload.ByName("googlenet")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, it := range iters {
			sink += vgg.ExecTime(nv4, nv4.GPUs(), it)
		}
	}
	b.StopTimer()
	_ = sink
	report(b, "Fig. 6 — execution time (s) vs iterations", func() {
		for _, wl := range []workload.Workload{goog, vgg} {
			fmt.Printf("  %s:\n", wl.Name)
			fmt.Printf("    %-22s", "iterations")
			for _, it := range iters {
				fmt.Printf("%10d", it)
			}
			fmt.Println()
			rows := []struct {
				label string
				top   *topology.Topology
			}{
				{"2 GPU NVLink", nv2}, {"2 GPU PCIe", pc2},
				{"4 GPU NVLink", nv4}, {"4 GPU PCIe", pc4},
			}
			for _, r := range rows {
				fmt.Printf("    %-22s", r.label)
				for _, it := range iters {
					fmt.Printf("%10.0f", wl.ExecTime(r.top, r.top.GPUs(), it))
				}
				fmt.Println()
			}
		}
	})
}

// allocationStudy samples every 4- and 5-GPU allocation on the DGX-V
// and computes the Fig. 11 metrics for VGG-16.
func allocationStudy() (aggBW, effBW, execTime []float64) {
	top := topology.DGXV100()
	vgg, _ := workload.ByName("vgg-16")
	for _, k := range []int{4, 5} {
		subset := make([]int, k)
		var rec func(start, depth int)
		rec = func(start, depth int) {
			if depth == k {
				agg := top.Graph.InducedSubgraph(subset).TotalWeight()
				eff := ncclsim.PeakEffectiveBandwidth(top, subset)
				tt := vgg.ExecTime(top, subset, vgg.DefaultIters)
				aggBW = append(aggBW, agg)
				effBW = append(effBW, eff)
				execTime = append(execTime, tt)
				return
			}
			for i := start; i <= top.NumGPUs()-(k-depth); i++ {
				subset[depth] = i
				rec(i+1, depth+1)
			}
		}
		rec(0, 0)
	}
	return
}

// BenchmarkFig11MetricCorrelation regenerates Fig. 11: AggBW does not
// predict execution time (a), because AggBW does not track EffBW (b);
// EffBW does predict execution time (c).
func BenchmarkFig11MetricCorrelation(b *testing.B) {
	var agg, eff, tt []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, eff, tt = allocationStudy()
	}
	b.StopTimer()
	report(b, "Fig. 11 — scoring-metric correlations (VGG-16, 4/5-GPU allocations)", func() {
		fmt.Printf("  (a) corr(AggBW, exec time)  = %+.3f  (paper: weak)\n", regress.Pearson(agg, tt))
		fmt.Printf("  (b) corr(AggBW, EffBW)      = %+.3f  (paper: weak)\n", regress.Pearson(agg, eff))
		fmt.Printf("  (c) corr(EffBW, exec time)  = %+.3f  (paper: strong negative)\n", regress.Pearson(eff, tt))
	})
}

// BenchmarkTable2Coefficients regenerates Table 2: fitting the
// 14-term Eq. 2 effective-bandwidth model against the ncclsim
// microbenchmark on the DGX-V.
func BenchmarkTable2Coefficients(b *testing.B) {
	top := topology.DGXV100()
	var model *effbw.Model
	var samples []effbw.Sample
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, samples, err = effbw.Train(top, effbw.DefaultSizes())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	report(b, "Table 2 — Eq. 2 coefficients (fitted here vs paper)", func() {
		paper := effbw.PaperModel().Theta
		for i, th := range model.Theta {
			fmt.Printf("  θ%-3d fitted %10.3f   paper %10.3f\n", i+1, th, paper[i])
		}
		fmt.Printf("  training mixes: %d (paper: 31)\n", len(samples))
		fmt.Printf("  RelErr=%.4f (paper 0.0709)  RMSE=%.4f  MAE=%.4f\n",
			model.Metrics.RelErr, model.Metrics.RMSE, model.Metrics.MAE)
	})
}

// BenchmarkFig12PredictedVsActual regenerates Fig. 12: predicted vs
// measured effective bandwidth across job sizes.
func BenchmarkFig12PredictedVsActual(b *testing.B) {
	top := topology.DGXV100()
	model, _, err := effbw.Train(top, effbw.DefaultSizes())
	if err != nil {
		b.Fatal(err)
	}
	var corr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var pred, actual []float64
		for _, k := range effbw.DefaultSizes() {
			for _, s := range effbw.CollectSamples(top, []int{k}) {
				pred = append(pred, model.Predict(s.Counts))
				actual = append(actual, s.EffBW)
			}
		}
		corr = regress.Pearson(pred, actual)
	}
	b.StopTimer()
	report(b, "Fig. 12 — predicted vs actual effective bandwidth", func() {
		for _, k := range effbw.DefaultSizes() {
			var pred, actual []float64
			for _, s := range effbw.CollectSamples(top, []int{k}) {
				pred = append(pred, model.Predict(s.Counts))
				actual = append(actual, s.EffBW)
			}
			fmt.Printf("  %d-GPU jobs: %2d mixes, corr = %.3f\n", k, len(pred), regress.Pearson(pred, actual))
		}
		fmt.Printf("  all sizes pooled: corr = %.3f (paper: strong, generalizes across sizes)\n", corr)
	})
}

// dgxvEvaluation runs the 300-job paper mix under the four policies.
func dgxvEvaluation(b *testing.B) map[string]sched.RunResult {
	b.Helper()
	top := topology.DGXV100()
	results, err := sched.ComparePolicies(top, sched.PaperPolicies(), jobs.PaperMix(1))
	if err != nil {
		b.Fatal(err)
	}
	return results
}

// BenchmarkFig13DGXVEvaluation regenerates Fig. 13: execution time and
// predicted effective bandwidth per workload class under each policy
// on the DGX-V.
func BenchmarkFig13DGXVEvaluation(b *testing.B) {
	var results map[string]sched.RunResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results = dgxvEvaluation(b)
	}
	b.StopTimer()
	report(b, "Fig. 13 — DGX-V evaluation (300-job paper mix)", func() {
		for _, sensitive := range []bool{true, false} {
			fmt.Printf("  %s jobs:\n", sched.SensitivityLabel(sensitive))
			for _, name := range sched.PaperPolicies() {
				recs := sched.FilterMultiGPU(sched.FilterSensitive(results[name].Records, sensitive))
				et := stats.Summarize(sched.ExecTimes(recs))
				bw := stats.Summarize(sched.PredictedEffBWs(recs))
				fmt.Printf("    %-11s exec time: %s\n", name, et)
				fmt.Printf("    %-11s eff BW:    %s\n", name, bw)
			}
		}
		fmt.Println("  per-network 75th-percentile execution time (sensitive):")
		fmt.Printf("    %-14s", "network")
		for _, name := range sched.PaperPolicies() {
			fmt.Printf("%12s", name)
		}
		fmt.Println()
		for _, w := range workload.Sensitive() {
			fmt.Printf("    %-14s", w.Name)
			for _, name := range sched.PaperPolicies() {
				recs := sched.FilterMultiGPU(sched.FilterWorkload(results[name].Records, w.Name))
				if len(recs) == 0 {
					fmt.Printf("%12s", "-")
					continue
				}
				fmt.Printf("%12.0f", stats.Summarize(sched.ExecTimes(recs)).Q3)
			}
			fmt.Println()
		}
	})
}

// BenchmarkTable3Summary regenerates Table 3: speedup quartiles and
// throughput normalized to baseline.
func BenchmarkTable3Summary(b *testing.B) {
	var rows []sched.SpeedupSummary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := dgxvEvaluation(b)
		var err error
		rows, err = sched.Table3(results, "baseline")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	report(b, "Table 3 — speedup and throughput vs baseline", func() {
		fmt.Print(sched.FormatTable3(rows))
		fmt.Println("  (paper: Preserve 75th% 1.124, MAX 1.352, Tput 1.12)")
	})
}

// BenchmarkFig15SimValidation regenerates Fig. 15: effective bandwidth
// from the Eq. 2 model (simulator) correlates with the microbenchmark
// measurement (real run) across a scheduled mix.
func BenchmarkFig15SimValidation(b *testing.B) {
	top := topology.DGXV100()
	var corr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := sched.ComparePolicies(top, []string{"preserve"}, jobs.PaperMix(2))
		if err != nil {
			b.Fatal(err)
		}
		recs := sched.FilterMultiGPU(results["preserve"].Records)
		corr = regress.Pearson(sched.PredictedEffBWs(recs), sched.MeasuredEffBWs(recs))
	}
	b.StopTimer()
	report(b, "Fig. 15 — simulated vs measured effective bandwidth", func() {
		fmt.Printf("  correlation over a 300-job run: %.3f (paper: strong)\n", corr)
	})
}

// BenchmarkFig16EffBWvsExecTime regenerates Fig. 16: execution time as
// a function of effective bandwidth per workload — decreasing for
// sensitive networks, flat for insensitive ones.
func BenchmarkFig16EffBWvsExecTime(b *testing.B) {
	bws := []float64{10, 20, 30, 50, 80}
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, w := range workload.CNNs() {
			for _, bw := range bws {
				sink += w.ExecTimeAtBandwidth(bw, 4, w.DefaultIters)
			}
		}
	}
	_ = sink
	report(b, "Fig. 16 — exec time (s) vs effective bandwidth (4 GPUs)", func() {
		fmt.Printf("  %-14s", "GB/s")
		for _, bw := range bws {
			fmt.Printf("%10.0f", bw)
		}
		fmt.Printf("%12s\n", "sensitive")
		for _, w := range workload.CNNs() {
			fmt.Printf("  %-14s", w.Name)
			for _, bw := range bws {
				fmt.Printf("%10.0f", w.ExecTimeAtBandwidth(bw, 4, w.DefaultIters))
			}
			fmt.Printf("%12v\n", w.Sensitive)
		}
	})
}

// BenchmarkFig18NovelTopologies regenerates Fig. 18: sensitive-job
// effective bandwidth per policy on the 16-GPU Torus-2d and Cube-mesh
// machines, in the paper's fixed-duration simulator mode.
func BenchmarkFig18NovelTopologies(b *testing.B) {
	type study struct {
		name    string
		results map[string]sched.RunResult
	}
	var studies []study
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		studies = studies[:0]
		for _, name := range []string{"torus-2d", "cubemesh-16"} {
			top, err := topology.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			results, err := sched.ComparePoliciesMode(top, sched.PaperPolicies(), jobs.PaperMix(1), sched.ModeFixed)
			if err != nil {
				b.Fatal(err)
			}
			studies = append(studies, study{name, results})
		}
	}
	b.StopTimer()
	report(b, "Fig. 18 — 16-GPU exploration (sensitive jobs, predicted EffBW)", func() {
		for _, st := range studies {
			fmt.Printf("  %s:\n", st.name)
			for _, p := range sched.PaperPolicies() {
				recs := sched.FilterMultiGPU(sched.FilterSensitive(st.results[p].Records, true))
				fmt.Printf("    %-11s %s\n", p, stats.Summarize(sched.PredictedEffBWs(recs)))
			}
		}
		fmt.Println("  (paper: Preserve lifts the lower tail; Greedy wins 75th% on the uniform torus)")
	})
}

// BenchmarkFig19SchedulingOverhead regenerates Fig. 19: MAPA decision
// latency vs requested GPUs across hardware graphs. Decisions are made
// on an idle machine — the paper's stated upper bound.
func BenchmarkFig19SchedulingOverhead(b *testing.B) {
	tops := []*topology.Topology{
		topology.Summit(), topology.DGXV100(), topology.Torus2D(), topology.CubeMesh16(),
	}
	scorers := make([]*score.Scorer, len(tops))
	for i, top := range tops {
		scorers[i] = score.NewScorer(effbw.TrainedFor(top))
	}
	type cell struct {
		k       int
		perTop  []float64 // ms per decision
		matched []int
	}
	var grid []cell
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		grid = grid[:0]
		for k := 2; k <= 9; k++ {
			c := cell{k: k}
			for ti, top := range tops {
				if k > top.NumGPUs() {
					c.perTop = append(c.perTop, -1)
					c.matched = append(c.matched, 0)
					continue
				}
				p := policy.NewPreserve(scorers[ti])
				req := policy.Request{Pattern: appgraph.Ring(k), Sensitive: true}
				start := testingNow()
				alloc, err := p.Allocate(top.Graph, top, req)
				if err != nil {
					b.Fatal(err)
				}
				c.perTop = append(c.perTop, testingNow()-start)
				c.matched = append(c.matched, len(alloc.GPUs))
			}
			grid = append(grid, c)
		}
	}
	b.StopTimer()
	report(b, "Fig. 19 — scheduling overhead (ms per decision, idle machine)", func() {
		fmt.Printf("  %-6s", "k")
		for _, top := range tops {
			fmt.Printf("%14s", top.Name)
		}
		fmt.Println()
		for _, c := range grid {
			fmt.Printf("  %-6d", c.k)
			for _, ms := range c.perTop {
				if ms < 0 {
					fmt.Printf("%14s", "-")
				} else {
					fmt.Printf("%14.2f", ms)
				}
			}
			fmt.Println()
		}
		fmt.Printf("  (candidate enumeration capped at %d matches per decision)\n", policy.DefaultMaxCandidates)
	})
}

// BenchmarkAblationPolicies compares Preserve against its ablations:
// effbw-only (no preservation rule) and preserve-aggbw (Eq. 1 instead
// of Eq. 2 for sensitive jobs).
func BenchmarkAblationPolicies(b *testing.B) {
	top := topology.DGXV100()
	names := []string{"baseline", "preserve", "effbw-only", "preserve-aggbw"}
	var results map[string]sched.RunResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		results, err = sched.ComparePolicies(top, names, jobs.PaperMix(1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	report(b, "Ablation — Preserve vs its components (sensitive jobs)", func() {
		for _, name := range names {
			recs := sched.FilterMultiGPU(sched.FilterSensitive(results[name].Records, true))
			fmt.Printf("  %-15s ET: %s\n", name, stats.Summarize(sched.ExecTimes(recs)))
		}
	})
}

// BenchmarkAblationModelBasis compares the 14-term Eq. 2 basis with a
// linear-only 3-term model, quantifying the value of the nonlinear
// terms (the paper's Fig. 11/12 argument).
func BenchmarkAblationModelBasis(b *testing.B) {
	top := topology.DGXV100()
	samples := effbw.CollectSamples(top, effbw.DefaultSizes())
	var full, linear float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x14 := make([][]float64, len(samples))
		x3 := make([][]float64, len(samples))
		y := make([]float64, len(samples))
		for j, s := range samples {
			x14[j] = effbw.Features(s.Counts)
			x3[j] = []float64{float64(s.Counts.X), float64(s.Counts.Y), float64(s.Counts.Z)}
			y[j] = s.EffBW
		}
		th14, err := regress.Ridge(x14, y, 1e-6)
		if err != nil {
			b.Fatal(err)
		}
		th3, err := regress.Ridge(x3, y, 1e-6)
		if err != nil {
			b.Fatal(err)
		}
		p14 := make([]float64, len(samples))
		p3 := make([]float64, len(samples))
		for j := range samples {
			p14[j] = regress.Predict(th14, x14[j])
			p3[j] = regress.Predict(th3, x3[j])
		}
		m14, _ := regress.Evaluate(p14, y)
		m3, _ := regress.Evaluate(p3, y)
		full, linear = m14.RMSE, m3.RMSE
	}
	b.StopTimer()
	report(b, "Ablation — Eq. 2 basis vs linear-only model", func() {
		fmt.Printf("  14-term Eq. 2 RMSE: %.3f GB/s\n", full)
		fmt.Printf("  3-term linear RMSE: %.3f GB/s\n", linear)
	})
}

// BenchmarkAblationMatchDedup quantifies the cost of match
// deduplication versus raw enumeration on the DGX-V, and the gain from
// the worker-pool parallel enumeration.
func BenchmarkAblationMatchDedup(b *testing.B) {
	top := topology.DGXV100()
	pattern := appgraph.Ring(5)
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			match.CountEmbeddings(pattern, top.Graph)
		}
	})
	b.Run("deduped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			match.FindAllDeduped(pattern, top.Graph)
		}
	})
	b.Run("deduped-parallel", func(b *testing.B) {
		w := policy.DefaultParallelism()
		for i := 0; i < b.N; i++ {
			match.FindAllDedupedParallel(pattern, top.Graph, w)
		}
	})
}

// BenchmarkAllocationDecision measures one Preserve decision on a
// half-busy DGX-V — the steady-state scheduling cost. Variants cover
// the embedding-cached path (recurring availability state, the
// scheduler steady state) and the worker-pool parallel matcher.
func BenchmarkAllocationDecision(b *testing.B) {
	top := topology.DGXV100()
	scorer := score.NewScorer(effbw.TrainedFor(top))
	p := policy.NewPreserve(scorer)
	avail := top.Graph.Without([]int{1, 6})
	req := policy.Request{Pattern: appgraph.Ring(3), Sensitive: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Allocate(avail, top, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocationDecisionCached(b *testing.B) {
	top := topology.DGXV100()
	scorer := score.NewScorer(effbw.TrainedFor(top))
	p := policy.NewPreserve(scorer)
	policy.AttachCache(p, matchcache.New(top, 0))
	avail := top.Graph.Without([]int{1, 6})
	req := policy.Request{Pattern: appgraph.Ring(3), Sensitive: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Allocate(avail, top, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocationDecisionParallel sweeps the worker-pool matcher
// over 1/2/4/8 workers (the multi-core scaling curve; on a single-core
// host the sub-benchmarks show parity, not speedup). CI pipes this and
// BenchmarkUniverseBuildCluster through cmd/benchjson into
// BENCH_matcher.json.
func BenchmarkAllocationDecisionParallel(b *testing.B) {
	top := topology.DGXV100()
	scorer := score.NewScorer(effbw.TrainedFor(top))
	avail := top.Graph.Without([]int{1, 6})
	req := policy.Request{Pattern: appgraph.Ring(3), Sensitive: true}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := policy.NewPreserve(scorer)
			policy.SetParallelism(p, workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Allocate(avail, top, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUniverseBuildCluster measures the one-time idle-state
// universe build — the cold-start enumeration on the serving path of
// every large machine — for Ring(3) on the 72-GPU cluster-a100
// (~426K raw embeddings, 59,640 classes) at 1/2/4/8 workers under the
// cost-estimated work-stealing partitioner. Per-run metrics:
//
//	classes         built universe size (must equal C(72,3))
//	plan-imbalance  max/min per-worker claimed estimated cost of the
//	                chunk plan under idealized claiming (1 = the dense-
//	                root straggler is gone)
//	slice-imbalance the same metric for the retired one-contiguous-
//	                slice-per-worker partitioner, for comparison
func BenchmarkUniverseBuildCluster(b *testing.B) {
	top := topology.ClusterA100(9)
	pattern := appgraph.Ring(3)
	const wantClasses = 72 * 71 * 70 / 6
	costs := match.NewSearcher(pattern, top.Graph).RootCosts()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var u *match.Universe
			var bs *match.BuildStats
			for i := 0; i < b.N; i++ {
				u, bs = match.BuildUniverseStats(pattern, top.Graph, 0, workers)
			}
			if u.Len() != wantClasses {
				b.Fatalf("universe holds %d classes, want %d", u.Len(), wantClasses)
			}
			b.ReportMetric(float64(u.Len()), "classes")
			if workers > 1 {
				b.ReportMetric(bs.Plan, "plan-imbalance")
				b.ReportMetric(match.SliceImbalance(costs, workers), "slice-imbalance")
			}
		})
	}
}

// coldMissStates returns every 2-busy availability state of the
// topology, the rotation used by the cold-miss benchmarks: each
// decision sees a different free-GPU mask, so a tier-2 cache could
// never hit and the miss path itself is what gets timed.
func coldMissStates(top *topology.Topology) []*graph.Graph {
	var out []*graph.Graph
	gpus := top.GPUs()
	for i := 0; i < len(gpus); i++ {
		for j := i + 1; j < len(gpus); j++ {
			out = append(out, top.Graph.Without([]int{gpus[i], gpus[j]}))
		}
	}
	return out
}

// BenchmarkAllocationDecisionColdMissSearch measures a Preserve
// decision on a never-before-seen availability state with the
// pre-universe pipeline: every miss runs a full subgraph-isomorphism
// enumeration (the PR 1 uncached path, ~176 µs on the reference
// container's DGX-A100).
func BenchmarkAllocationDecisionColdMissSearch(b *testing.B) {
	top := topology.DGXA100()
	scorer := score.NewScorer(effbw.TrainedFor(top))
	p := policy.NewPreserve(scorer)
	states := coldMissStates(top)
	req := policy.Request{Pattern: appgraph.Ring(3), Sensitive: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Allocate(states[i%len(states)], top, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocationDecisionColdMissFiltered is the same cold-miss
// rotation served by the two-tier pipeline's tier 1: the shape's
// idle-state universe is warmed once before timing, and each decision
// derives its candidate list by bitmask-filtering the universe — no
// search. The scorer's ring-channel memoization is shared with the
// search variant's setup, so the delta isolates the matcher.
func BenchmarkAllocationDecisionColdMissFiltered(b *testing.B) {
	top := topology.DGXA100()
	scorer := score.NewScorer(effbw.TrainedFor(top))
	p := policy.NewPreserve(scorer)
	pattern := appgraph.Ring(3)
	store := matchcache.NewStore(top, 0)
	store.Warm(1, pattern)
	policy.AttachUniverses(p, store)
	states := coldMissStates(top)
	req := policy.Request{Pattern: pattern, Sensitive: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Allocate(states[i%len(states)], top, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocationDecisionScored measures the steady-state warmed
// allocation decision on the 72-GPU cluster — Ring(3), whose idle
// universe holds 59,640 candidate classes, with 2 GPUs busy so ~57k
// candidates stay live — for each MAPA selection order, in two modes:
//
//	table    decisions served by the precomputed score table over the
//	         live view: per candidate, pure lookups plus O(k) Eq. 3
//	         delta arithmetic; zero dynamic Scorer evaluations
//	         (score.Evaluations), zero searches, zero universe scans.
//	dynamic  score tables disabled: each decision materializes the live
//	         candidate entry and scores every candidate dynamically —
//	         the pre-table behavior this PR replaces.
//
// The four policy variants cover all four table selection strategies
// (fully static order, EffBW-primary group, PreservedBW-primary
// streaming argmax, AggBW-primary group). Decisions are byte-identical
// across modes; CI archives the numbers in BENCH_matcher.json via
// cmd/benchjson.
func BenchmarkAllocationDecisionScored(b *testing.B) {
	top := topology.ClusterA100(9)
	pattern := appgraph.Ring(3)
	scorer := score.NewScorer(effbw.TrainedFor(top))
	busy := []int{1, 6}
	avail := top.Graph.Without(busy)
	variants := []struct {
		name      string
		mk        func() policy.Allocator
		sensitive bool
	}{
		{"greedy", func() policy.Allocator { return policy.NewGreedy(scorer) }, true},
		{"preserve-sensitive", func() policy.Allocator { return policy.NewPreserve(scorer) }, true},
		{"preserve-insensitive", func() policy.Allocator { return policy.NewPreserve(scorer) }, false},
		{"preserve-aggbw-sensitive", func() policy.Allocator { return policy.NewPreserveAggBW(scorer) }, true},
	}
	for _, mode := range []string{"table", "dynamic"} {
		store := matchcache.NewStore(top, 0)
		if mode == "dynamic" {
			store.SetScoreTables(false)
		}
		store.Warm(1, pattern)
		views := store.NewViews()
		views.Allocate(busy)
		for _, v := range variants {
			b.Run(fmt.Sprintf("mode=%s/policy=%s", mode, v.name), func(b *testing.B) {
				p := v.mk()
				policy.AttachUniverses(p, store)
				policy.AttachViews(p, views)
				req := policy.Request{Pattern: pattern, Sensitive: v.sensitive}
				// Pay the one-time per-(table, model) order sort and
				// per-state memoizations before timing: steady state is
				// the regime under measurement. A reused result buffer
				// (AllocateInto) keeps the table-served loop at 0
				// allocs/op — the discipline mapad's serving loop uses.
				var buf policy.Allocation
				if err := policy.AllocateInto(p, &buf, avail, top, req); err != nil {
					b.Fatal(err)
				}
				evals := score.Evaluations()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := policy.AllocateInto(p, &buf, avail, top, req); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if d := score.Evaluations() - evals; mode == "table" && d != 0 {
					b.Fatalf("table mode ran %d dynamic score evaluations, want 0", d)
				}
			})
		}
	}
}

// BenchmarkNCCLDecompose measures the ring-channel analysis on a
// 5-GPU allocation.
func BenchmarkNCCLDecompose(b *testing.B) {
	top := topology.DGXV100()
	gpus := []int{0, 2, 3, 6, 7}
	for i := 0; i < b.N; i++ {
		ncclsim.Decompose(top, gpus)
	}
}

// clusterChurnStates returns a sliding 10-GPU free window over the
// 72-GPU cluster: state i has GPUs {i..i+9 mod 72} free, so
// consecutive states differ by a 2-GPU delta (GPU i leaves the free
// set, GPU i+10 enters). This is the mostly-busy multi-node regime the
// live views exist for: candidate output is small while the idle-state
// universe — which the filter path must scan in full per decision —
// holds tens of thousands of embeddings.
func clusterChurnStates(top *topology.Topology) []*graph.Graph {
	const window = 10
	n := top.NumGPUs()
	states := make([]*graph.Graph, n)
	for i := 0; i < n; i++ {
		free := make([]int, window)
		for j := range free {
			free[j] = (i + j) % n
		}
		states[i] = top.Graph.InducedSubgraph(free)
	}
	return states
}

// BenchmarkFilteredMiss measures deriving one miss's candidate entry on
// the 72-GPU cluster via the tier-1 path: every decision mask-filters
// the shape's idle-state universe — an O(|universe|) subset scan
// (59,640 Ring(3) classes) regardless of how little changed.
func BenchmarkFilteredMiss(b *testing.B) {
	top := topology.ClusterA100(9)
	pattern := appgraph.Ring(3)
	store := matchcache.NewStore(top, 0)
	store.Warm(1, pattern)
	states := clusterChurnStates(top)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := store.FilteredEntry(pattern, states[i%len(states)], 0, 1); !ok {
			b.Fatal("filtered entry rejected")
		}
	}
}

// BenchmarkLiveViewMiss measures the same rotation served by the
// tier-0 live view: each state change publishes its 2-GPU delta
// (walking just those GPUs' posting lists) and the candidate list is
// read from the maintained live set — cost proportional to the delta
// and the output, not to |universe|. Output is byte-identical to
// BenchmarkFilteredMiss's entries.
func BenchmarkLiveViewMiss(b *testing.B) {
	top := topology.ClusterA100(9)
	pattern := appgraph.Ring(3)
	store := matchcache.NewStore(top, 0)
	store.Warm(1, pattern)
	views := store.NewViews()
	states := clusterChurnStates(top)
	n := top.NumGPUs()
	const window = 10
	// Enter state 0: everything outside the initial window is busy.
	var busy []int
	for g := window; g < n; g++ {
		busy = append(busy, g)
	}
	views.Allocate(busy)
	// Build the view (and pay its one-time posting-list construction)
	// before timing, mirroring the warmed store above.
	if _, _, ok := views.Entry(pattern, states[0], 0, 1); !ok {
		b.Fatal("view entry rejected")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := views.Entry(pattern, states[i%len(states)], 0, 1); !ok {
			b.Fatal("view entry rejected")
		}
		// Publish the delta to the next state: GPU i leaves the free
		// window, GPU i+window enters it.
		views.Allocate([]int{i % n})
		views.Release([]int{(i + window) % n})
	}
}
