package mapa

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"mapa/internal/policy"
)

// TestReleaseDuringColdBuild pins the lock-scope fix: a Release (and a
// warmed Allocate) must complete while a cold shape's universe build is
// in flight. The prewarmGate hook stands in for the build — it runs at
// the exact point of Allocate's unlocked prewarm phase, so if any
// future refactor moves that phase back under the state lock, the gated
// goroutine will hold the lock and the Release below will time out.
func TestReleaseDuringColdBuild(t *testing.T) {
	s, err := NewSystem("dgx-a100", "preserve", WithWarmShapes(4))
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	unblock := make(chan struct{})
	var once sync.Once
	s.prewarmGate = func(numGPUs int) {
		if numGPUs == 6 { // gate only the cold request
			once.Do(func() { close(entered) })
			<-unblock
		}
	}

	warm, err := s.Allocate(JobRequest{NumGPUs: 2})
	if err != nil {
		t.Fatal(err)
	}

	coldDone := make(chan *Lease, 1)
	go func() {
		l, err := s.Allocate(JobRequest{NumGPUs: 6})
		if err != nil {
			t.Errorf("cold allocate: %v", err)
		}
		coldDone <- l
	}()
	<-entered // the cold build is now in flight, outside the lock

	released := make(chan error, 1)
	go func() { released <- s.Release(warm) }()
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("release during cold build: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Release blocked behind an in-flight cold build")
	}

	// A warmed allocation must get through too, leaving exactly 6 free
	// for the gated request.
	warm2, err := s.Allocate(JobRequest{NumGPUs: 2})
	if err != nil {
		t.Fatalf("warmed allocate during cold build: %v", err)
	}
	close(unblock)
	cold := <-coldDone
	if cold == nil || len(cold.GPUs) != 6 {
		t.Fatalf("cold lease = %+v, want 6 GPUs", cold)
	}
	if err := s.Release(cold); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(warm2); err != nil {
		t.Fatal(err)
	}
	if n := s.ActiveLeases(); n != 0 {
		t.Fatalf("active leases = %d, want 0", n)
	}
}

// TestTableServedDecisionsDuringColdBuild checks the other half of the
// lock-scope contract: warmed-shape decisions keep getting served off
// the precomputed tables while a cold build is gated in flight.
func TestTableServedDecisionsDuringColdBuild(t *testing.T) {
	s, err := NewSystem("dgx-a100", "preserve", WithWarmShapes(4))
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	unblock := make(chan struct{})
	var once sync.Once
	s.prewarmGate = func(numGPUs int) {
		if numGPUs == 5 {
			once.Do(func() { close(entered) })
			<-unblock
		}
	}
	coldDone := make(chan struct{})
	go func() {
		defer close(coldDone)
		if _, err := s.Allocate(JobRequest{NumGPUs: 5}); err != nil {
			t.Errorf("cold allocate: %v", err)
		}
	}()
	<-entered

	before := s.CacheStats().TableServed
	for i := 0; i < 8; i++ {
		l, err := s.Allocate(JobRequest{NumGPUs: 3, Sensitive: i%2 == 0})
		if err != nil {
			t.Fatalf("warmed allocate %d during cold build: %v", i, err)
		}
		if err := s.Release(l); err != nil {
			t.Fatal(err)
		}
	}
	after := s.CacheStats().TableServed
	if after <= before {
		t.Fatalf("TableServed did not grow during cold build: %d -> %d", before, after)
	}
	close(unblock)
	<-coldDone
}

// TestLeaseGPUsDoNotAliasInternalRecord pins the aliasing fix: the
// slice returned in Lease.GPUs must not share a backing array with the
// System's internal lease record. A caller scrambling it — sorting,
// truncating, a JSON layer rewriting in place — must not corrupt
// release validation or the restored free set.
func TestLeaseGPUsDoNotAliasInternalRecord(t *testing.T) {
	s, err := NewSystem("dgx-a100", "preserve", WithWarmShapes(4))
	if err != nil {
		t.Fatal(err)
	}
	before := s.FreeGPUs()

	l, err := s.Allocate(JobRequest{NumGPUs: 3, Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	internal := append([]int(nil), s.leases[l.ID]...)

	// Scramble the caller's slice every way a client plausibly would.
	sort.Sort(sort.Reverse(sort.IntSlice(l.GPUs)))
	for i := range l.GPUs {
		l.GPUs[i] = -1000 - i
	}
	if got := s.leases[l.ID]; !reflect.DeepEqual(got, internal) {
		t.Fatalf("internal lease record changed with the caller's slice: %v, want %v", got, internal)
	}

	if err := s.Release(l); err != nil {
		t.Fatalf("release after caller mutated Lease.GPUs: %v", err)
	}
	after := s.FreeGPUs()
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("free set after release = %v, want %v", after, before)
	}
}

// hammerSystem runs goroutines×opsEach of mixed Allocate / Release /
// MarkUnhealthy / Restore traffic — some through per-tenant handles —
// against a System under the race detector, records the observed
// linearization via the onCommit hook, then replays that linearization
// into a fresh System and asserts every decision reproduces
// byte-identically and the final states match field-exactly.
func hammerSystem(t *testing.T, topo string, warm, tenants, goroutines, opsEach, maxSize int) {
	t.Helper()
	s, err := NewSystem(topo, "preserve", WithWarmShapes(warm))
	if err != nil {
		t.Fatal(err)
	}
	var log []commitOp
	s.onCommit = func(op commitOp) { log = append(log, op) } // called under s.mu

	handles := make([]*Tenant, tenants)
	for i := range handles {
		if handles[i], err = s.NewTenant(); err != nil {
			t.Fatal(err)
		}
	}

	numGPUs := s.NumGPUs()
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var held []*Lease
			release := func(i int) {
				l := held[i]
				held = append(held[:i], held[i+1:]...)
				if err := s.Release(l); err != nil {
					t.Errorf("worker %d: release %d: %v", w, l.ID, err)
				}
			}
			for i := 0; i < opsEach; i++ {
				switch op := rng.Intn(10); {
				case op < 5: // allocate, sometimes via a tenant handle
					req := JobRequest{
						NumGPUs:   2 + rng.Intn(maxSize-1),
						Sensitive: rng.Intn(2) == 0,
					}
					var l *Lease
					var err error
					if tenants > 0 && rng.Intn(2) == 0 {
						l, err = handles[rng.Intn(tenants)].Allocate(req)
					} else {
						l, err = s.Allocate(req)
					}
					switch {
					case err == nil:
						held = append(held, l)
					case errors.Is(err, policy.ErrNoAllocation):
						if len(held) > 0 {
							release(rng.Intn(len(held)))
						}
					default:
						t.Errorf("worker %d: allocate: %v", w, err)
					}
				case op < 8: // release
					if len(held) > 0 {
						release(rng.Intn(len(held)))
					}
				case op < 9: // fault: errors (already-unhealthy, races) are expected
					s.MarkUnhealthy(rng.Intn(numGPUs))
				default: // repair
					s.Restore(rng.Intn(numGPUs))
				}
			}
			for len(held) > 0 {
				release(0)
			}
		}(w)
	}
	wg.Wait()

	// Replay the observed linearization into a fresh System. Decisions
	// are deterministic functions of state, so the replay must
	// reproduce every committed allocation byte-identically...
	r, err := NewSystem(topo, "preserve", WithWarmShapes(warm))
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range log {
		switch op.kind {
		case opAllocate:
			l, err := r.Allocate(op.req)
			if err != nil {
				t.Fatalf("replay op %d: allocate %+v: %v", i, op.req, err)
			}
			if l.ID != op.id || !reflect.DeepEqual(l.GPUs, op.gpus) {
				t.Fatalf("replay op %d: got lease %d %v, observed %d %v", i, l.ID, l.GPUs, op.id, op.gpus)
			}
		case opRelease:
			if err := r.Release(&Lease{ID: op.id}); err != nil {
				t.Fatalf("replay op %d: release %d: %v", i, op.id, err)
			}
		case opMark:
			if err := r.MarkUnhealthy(op.gpus...); err != nil {
				t.Fatalf("replay op %d: mark %v: %v", i, op.gpus, err)
			}
		case opRestore:
			if err := r.Restore(op.gpus...); err != nil {
				t.Fatalf("replay op %d: restore %v: %v", i, op.gpus, err)
			}
		default:
			t.Fatalf("replay op %d: unknown kind %q", i, op.kind)
		}
	}

	// ...and leave the replayed System field-exactly equal to the
	// hammered one.
	s.mu.Lock()
	r.mu.Lock()
	if !reflect.DeepEqual(s.leases, r.leases) {
		t.Errorf("leases diverge: %v vs %v", s.leases, r.leases)
	}
	if !reflect.DeepEqual(s.leasedBy, r.leasedBy) {
		t.Errorf("leasedBy diverges: %v vs %v", s.leasedBy, r.leasedBy)
	}
	if !reflect.DeepEqual(s.unhealthy, r.unhealthy) {
		t.Errorf("unhealthy sets diverge: %v vs %v", s.unhealthy, r.unhealthy)
	}
	if !reflect.DeepEqual(s.avail.Vertices(), r.avail.Vertices()) {
		t.Errorf("free sets diverge: %v vs %v", s.avail.Vertices(), r.avail.Vertices())
	}
	if s.nextID != r.nextID {
		t.Errorf("nextID diverges: %d vs %d", s.nextID, r.nextID)
	}
	r.mu.Unlock()
	s.mu.Unlock()

	if t.Failed() {
		t.Logf("linearization had %d committed ops", len(log))
	}
}

// TestConcurrentHammerDGXA100 is the single-server hammer: heavy mixed
// churn on the 8-GPU NVSwitch machine, verified against the serialized
// replay oracle.
func TestConcurrentHammerDGXA100(t *testing.T) {
	ops := 60
	if testing.Short() {
		ops = 15
	}
	hammerSystem(t, "dgx-a100", 4, 3, 8, ops, 4)
}

// TestConcurrentHammerClusterA100 runs the same oracle on the 72-GPU
// multi-node machine — fewer ops (universes are bigger) but the same
// field-exact bar.
func TestConcurrentHammerClusterA100(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	hammerSystem(t, "cluster-a100", 3, 2, 6, 12, 3)
}

// TestAllocateBatchMatchesSequential pins the coalescing primitive's
// contract: AllocateBatch(req, n) is byte-identical to n sequential
// Allocate calls.
func TestAllocateBatchMatchesSequential(t *testing.T) {
	a, err := NewSystem("dgx-a100", "preserve", WithWarmShapes(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSystem("dgx-a100", "preserve", WithWarmShapes(4))
	if err != nil {
		t.Fatal(err)
	}
	req := JobRequest{NumGPUs: 2, Sensitive: true}
	batched, errs := a.AllocateBatch(req, 5) // 5×2 GPUs > 8: tail must fail
	var sequential []*Lease
	var seqErrs []error
	for i := 0; i < 5; i++ {
		l, err := b.Allocate(req)
		sequential = append(sequential, l)
		seqErrs = append(seqErrs, err)
	}
	for i := range batched {
		if (errs[i] == nil) != (seqErrs[i] == nil) {
			t.Fatalf("slot %d: batch err %v, sequential err %v", i, errs[i], seqErrs[i])
		}
		if errs[i] != nil {
			if !errors.Is(errs[i], policy.ErrNoAllocation) {
				t.Fatalf("slot %d: %v", i, errs[i])
			}
			continue
		}
		if batched[i].ID != sequential[i].ID || !reflect.DeepEqual(batched[i].GPUs, sequential[i].GPUs) {
			t.Fatalf("slot %d: batch %d %v, sequential %d %v",
				i, batched[i].ID, batched[i].GPUs, sequential[i].ID, sequential[i].GPUs)
		}
	}
	if fmt.Sprint(a.FreeGPUs()) != fmt.Sprint(b.FreeGPUs()) {
		t.Fatalf("free sets diverge: %v vs %v", a.FreeGPUs(), b.FreeGPUs())
	}
}
