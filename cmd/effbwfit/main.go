// Command effbwfit regenerates the paper's effective-bandwidth model
// (Sec. 3.4.3): it samples allocations on a topology, measures each
// unique link mix with the ncclsim microbenchmark, fits the 14-term
// Eq. 2 regression, and prints the learned coefficients (Table 2),
// fit metrics, and the predicted-vs-actual points of Fig. 12.
//
// Usage:
//
//	effbwfit -topology dgx-v100
//	effbwfit -topology torus-2d -sizes 2,3,4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mapa/internal/effbw"
	"mapa/internal/topology"
)

func main() {
	var (
		name  = flag.String("topology", "dgx-v100", "topology: "+strings.Join(topology.Names(), ", "))
		sizes = flag.String("sizes", "2,3,4,5", "comma-separated allocation sizes to sample")
	)
	flag.Parse()

	if err := run(*name, *sizes); err != nil {
		fmt.Fprintln(os.Stderr, "effbwfit:", err)
		os.Exit(1)
	}
}

func run(name, sizesCSV string) error {
	top, err := topology.ByName(name)
	if err != nil {
		return err
	}
	var sizes []int
	for _, s := range strings.Split(sizesCSV, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad size %q: %w", s, err)
		}
		sizes = append(sizes, k)
	}

	model, samples, err := effbw.Train(top, sizes)
	if err != nil {
		return err
	}

	fmt.Printf("Topology %s: %d unique link mixes (paper: 31 on DGX-V)\n\n", top.Name, len(samples))
	fmt.Println("Table 2 — learned Eq. 2 coefficients:")
	labels := []string{
		"x", "y", "z",
		"1/(x+1)", "1/(y+1)", "1/(z+1)",
		"xy", "yz", "zx",
		"1/(xy+1)", "1/(yz+1)", "1/(zx+1)",
		"xyz", "1/(xyz+1)",
	}
	paper := effbw.PaperModel().Theta
	fmt.Printf("  %-4s %-10s %12s %12s\n", "θ", "term", "fitted", "paper")
	for i, th := range model.Theta {
		fmt.Printf("  θ%-3d %-10s %12.3f %12.3f\n", i+1, labels[i], th, paper[i])
	}
	fmt.Printf("\nFit metrics (paper: RelErr 0.0709): RelErr=%.4f RMSE=%.4f MAE=%.4f Pearson=%.4f\n\n",
		model.Metrics.RelErr, model.Metrics.RMSE, model.Metrics.MAE, model.Metrics.Pearson)

	fmt.Println("Fig. 12 — predicted vs actual effective bandwidth (GB/s):")
	fmt.Printf("  %-14s %10s %10s\n", "(x,y,z)", "actual", "predicted")
	for _, s := range samples {
		fmt.Printf("  (%2d,%2d,%2d)     %10.2f %10.2f\n",
			s.Counts.X, s.Counts.Y, s.Counts.Z, s.EffBW, model.Predict(s.Counts))
	}
	return nil
}
