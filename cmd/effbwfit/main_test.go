package main

import "testing"

func TestRunFitsDGXV(t *testing.T) {
	if err := run("dgx-v100", "2,3,4,5"); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("warpcore", "2,3"); err == nil {
		t.Error("unknown topology should error")
	}
	if err := run("dgx-v100", "2,x"); err == nil {
		t.Error("bad sizes should error")
	}
	if err := run("summit", "2"); err == nil {
		t.Error("too few mixes should error")
	}
}
