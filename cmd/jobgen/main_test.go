package main

import (
	"os"
	"path/filepath"
	"testing"

	"mapa/internal/jobs"
)

func TestRunGeneratesParsableFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.txt")
	if err := run(25, 7, 4, "", path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	js, err := jobs.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 25 {
		t.Fatalf("jobs = %d", len(js))
	}
	for _, j := range js {
		if j.NumGPUs > 4 {
			t.Fatalf("job %d exceeds max GPUs", j.ID)
		}
	}
}

func TestRunWorkloadSubset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.txt")
	if err := run(10, 1, 3, "vgg-16, alexnet", path); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(path)
	defer f.Close()
	js, err := jobs.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range js {
		if j.Workload != "vgg-16" && j.Workload != "alexnet" {
			t.Fatalf("unexpected workload %s", j.Workload)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(10, 1, 3, "bert", ""); err == nil {
		t.Error("unknown workload should error")
	}
	if err := run(0, 1, 3, "", ""); err == nil {
		t.Error("zero jobs should error")
	}
	if err := run(10, 1, 3, "", "/nonexistent-dir/x/y.txt"); err == nil {
		t.Error("bad output path should error")
	}
}
