// Command jobgen generates random multi-tenant job files matching the
// paper's evaluation mix (Sec. 4): a uniform blend of the nine
// workloads with uniformly distributed 1..max-gpus GPU requests.
//
// Usage:
//
//	jobgen -n 300 -seed 1 > jobs.txt
//	jobgen -n 100 -max-gpus 5 -workloads vgg-16,alexnet -o mix.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mapa/internal/jobs"
	"mapa/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 300, "number of jobs")
		seed    = flag.Int64("seed", 1, "random seed")
		maxGPUs = flag.Int("max-gpus", 5, "maximum GPUs per job")
		names   = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		out     = flag.String("o", "", "output path (default: stdout)")
	)
	flag.Parse()

	if err := run(*n, *seed, *maxGPUs, *names, *out); err != nil {
		fmt.Fprintln(os.Stderr, "jobgen:", err)
		os.Exit(1)
	}
}

func run(n int, seed int64, maxGPUs int, names, out string) error {
	cfg := jobs.GenerateConfig{N: n, MaxGPUs: maxGPUs, Seed: seed}
	if names != "" {
		for _, name := range strings.Split(names, ",") {
			w, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			cfg.Workloads = append(cfg.Workloads, w)
		}
	}
	jobList, err := jobs.Generate(cfg)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return jobs.Write(w, jobList)
}
