package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: mapa
cpu: some cpu
BenchmarkUniverseBuildCluster/workers=4-8         	       3	  41234567 ns/op	         1.25 plan-imbalance	     59640 classes
BenchmarkAllocationDecisionParallel/workers=2-8   	    5000	    240000 ns/op
PASS
ok  	mapa	12.345s
`
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkUniverseBuildCluster/workers=4-8" || r.Runs != 3 {
		t.Fatalf("first result = %+v", r)
	}
	if r.Metrics["ns/op"] != 41234567 {
		t.Errorf("ns/op = %v", r.Metrics["ns/op"])
	}
	if r.Metrics["plan-imbalance"] != 1.25 {
		t.Errorf("plan-imbalance = %v", r.Metrics["plan-imbalance"])
	}
	if r.Metrics["classes"] != 59640 {
		t.Errorf("classes = %v", r.Metrics["classes"])
	}
	if results[1].Metrics["ns/op"] != 240000 {
		t.Errorf("second ns/op = %v", results[1].Metrics["ns/op"])
	}
}

func TestParseRejectsNonBenchLines(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	mapa	1.2s",
		"goos: linux",
		"Benchmark only-two-fields",
		"BenchmarkX notanumber 5 ns/op",
	} {
		if r, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as %+v, want rejection", line, r)
		}
	}
}
