package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: mapa
cpu: some cpu
BenchmarkUniverseBuildCluster/workers=4-8         	       3	  41234567 ns/op	         1.25 plan-imbalance	     59640 classes
BenchmarkAllocationDecisionParallel/workers=2-8   	    5000	    240000 ns/op
PASS
ok  	mapa	12.345s
`
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkUniverseBuildCluster/workers=4-8" || r.Runs != 3 {
		t.Fatalf("first result = %+v", r)
	}
	if r.Metrics["ns/op"] != 41234567 {
		t.Errorf("ns/op = %v", r.Metrics["ns/op"])
	}
	if r.Metrics["plan-imbalance"] != 1.25 {
		t.Errorf("plan-imbalance = %v", r.Metrics["plan-imbalance"])
	}
	if r.Metrics["classes"] != 59640 {
		t.Errorf("classes = %v", r.Metrics["classes"])
	}
	if results[1].Metrics["ns/op"] != 240000 {
		t.Errorf("second ns/op = %v", results[1].Metrics["ns/op"])
	}
}

// TestParseBenchmemMetrics pins the -benchmem contract CI relies on:
// a result line carrying B/op and allocs/op must land all three
// standard metrics in the record, so BENCH_matcher.json archives the
// allocation profile of each decision path, not just its latency.
func TestParseBenchmemMetrics(t *testing.T) {
	line := "BenchmarkAllocationDecisionScored/cluster-a100/preserve/table-8   \t     100\t       193.0 ns/op\t       0 B/op\t       0 allocs/op"
	r, ok := parseLine(line)
	if !ok {
		t.Fatalf("parseLine rejected a -benchmem result line: %q", line)
	}
	if r.Name != "BenchmarkAllocationDecisionScored/cluster-a100/preserve/table-8" || r.Runs != 100 {
		t.Fatalf("result = %+v", r)
	}
	want := map[string]float64{"ns/op": 193.0, "B/op": 0, "allocs/op": 0}
	for unit, v := range want {
		got, present := r.Metrics[unit]
		if !present {
			t.Fatalf("metric %q missing from %v", unit, r.Metrics)
		}
		if got != v {
			t.Fatalf("metric %q = %v, want %v", unit, got, v)
		}
	}
}

// TestParseBenchmemWithReportMetric checks b.ReportMetric extras ride
// along beside the -benchmem pairs on the same line.
func TestParseBenchmemWithReportMetric(t *testing.T) {
	line := "BenchmarkUniverseBuildCluster/9x8-8\t       3\t  12345678 ns/op\t         0.1200 plan-imbalance\t  524288 B/op\t    4096 allocs/op"
	r, ok := parseLine(line)
	if !ok {
		t.Fatal("parseLine rejected a ReportMetric+benchmem line")
	}
	if r.Metrics["plan-imbalance"] != 0.12 {
		t.Fatalf("plan-imbalance = %v, want 0.12", r.Metrics["plan-imbalance"])
	}
	if r.Metrics["B/op"] != 524288 || r.Metrics["allocs/op"] != 4096 {
		t.Fatalf("alloc metrics = %v", r.Metrics)
	}
}

func TestParseRejectsNonBenchLines(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	mapa	1.2s",
		"goos: linux",
		"Benchmark only-two-fields",
		"BenchmarkX notanumber 5 ns/op",
	} {
		if r, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as %+v, want rejection", line, r)
		}
	}
}
