// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so CI can archive benchmark numbers as a
// machine-readable artifact (the matcher scaling curves land in
// BENCH_matcher.json this way).
//
// Usage:
//
//	go test -run '^$' -bench Universe -benchtime=1x . | benchjson
//
// Every benchmark result line becomes one record with the benchmark
// name, iteration count, and a metric map keyed by unit (ns/op plus
// any b.ReportMetric extras such as plan-imbalance). Non-benchmark
// lines (headers, PASS, ok) are ignored, so piping a whole `go test`
// run through is fine.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// parseLine parses one `go test -bench` result line, reporting ok =
// false for anything that is not a benchmark result.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	// Shortest valid line: "BenchmarkX-8 100 5 ns/op" — name, runs,
	// then value/unit pairs.
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// parse reads a whole benchmark run, keeping result lines in input
// order.
func parse(in io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			out = append(out, r)
		}
	}
	return out, sc.Err()
}

func main() {
	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
