package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mapa/internal/server"
)

// TestNewServerWiring drives the daemon's construction path end to end
// over a test listener: background warming, allocate/release, probe
// and metrics routes.
func TestNewServerWiring(t *testing.T) {
	srv, sys, err := newServer(options{
		topoName:    "dgx-a100",
		policyName:  "preserve",
		warmMaxGPUs: 4,
		queueDepth:  8,
		coalesce:    time.Millisecond,
		maxTenants:  4,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	sys.WaitWarm()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, _ := json.Marshal(server.AllocateRequest{Tenant: "t", NumGPUs: 2})
	resp, err := http.Post(ts.URL+"/v1/allocate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	var ar server.AllocateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(ar.GPUs) != 2 {
		t.Fatalf("allocate: code %d lease %+v", resp.StatusCode, ar)
	}
	body, _ = json.Marshal(server.ReleaseRequest{Tenant: "t", LeaseID: ar.LeaseID})
	resp, err = http.Post(ts.URL+"/v1/release", "application/json", bytes.NewReader(body))
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("release: %v code %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	for _, route := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + route)
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("GET %s: %v code %d", route, err, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if sys.ActiveLeases() != 0 {
		t.Fatalf("leaked leases: %d", sys.ActiveLeases())
	}
}

func TestNewServerRejectsUnknownTopology(t *testing.T) {
	if _, _, err := newServer(options{topoName: "no-such-machine", policyName: "preserve"}); err == nil {
		t.Fatal("want error for unknown topology")
	}
}
