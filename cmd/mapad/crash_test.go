package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mapa/internal/server"
)

// syncBuffer collects daemon output from exec's pipe goroutine while
// the test reads it from a live process.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// buildMapad compiles the daemon binary once per test run.
func buildMapad(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mapad")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a loopback port. There is a benign race between
// closing the probe listener and the daemon binding, acceptable in CI.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startMapad launches a journaled daemon and waits for /healthz.
func startMapad(t *testing.T, bin, journalDir, addr string) (*exec.Cmd, *syncBuffer) {
	t.Helper()
	var out syncBuffer
	cmd := exec.Command(bin,
		"-addr", addr,
		"-topology", "dgx-a100",
		"-policy", "preserve",
		"-warm", "0",
		"-journal", journalDir,
		"-fsync", "interval",
		"-snapshot-every", "5s",
		"-reap-every", "200ms",
	)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting mapad: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return cmd, &out
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatalf("mapad on %s never became healthy; output:\n%s", addr, out.String())
	return nil, nil
}

func postJSON(client *http.Client, url string, req, resp any) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	r, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer r.Body.Close()
	if resp != nil && r.StatusCode == 200 {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			return r.StatusCode, err
		}
	}
	return r.StatusCode, nil
}

func getLeases(t *testing.T, client *http.Client, addr string) map[int]server.LeaseEntry {
	t.Helper()
	r, err := client.Get("http://" + addr + "/v1/leases")
	if err != nil {
		t.Fatalf("GET /v1/leases: %v", err)
	}
	defer r.Body.Close()
	var lr server.LeasesResponse
	if err := json.NewDecoder(r.Body).Decode(&lr); err != nil {
		t.Fatalf("decoding /v1/leases: %v", err)
	}
	out := make(map[int]server.LeaseEntry, len(lr.Leases))
	for _, l := range lr.Leases {
		out[l.LeaseID] = l
	}
	return out
}

// TestCrashRecoveryAcrossSIGKILL is the end-to-end crash-fault drill:
// a journaled daemon is SIGKILLed mid-load, restarted on the same
// journal directory, and every lease acked to a client before the kill
// must come back — with its owner and TTL intact — while every acked
// release stays released. TTL'd leases are then reaped by the
// restarted daemon's reaper.
func TestCrashRecoveryAcrossSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a daemon binary")
	}
	bin := buildMapad(t)
	journalDir := t.TempDir()
	addr := freeAddr(t)
	proc, out := startMapad(t, bin, journalDir, addr)

	client := &http.Client{Timeout: 2 * time.Second}
	var (
		mu       sync.Mutex
		acked    = map[int]string{} // lease ID -> tenant, response received
		released = map[int]bool{}   // release acked
		timed    = map[int]bool{}   // allocated with a TTL
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("crash-w%d", w)
			// Worker 3's leases carry a 2s TTL: long enough to survive
			// until the kill, short enough to expire for the restarted
			// daemon's reaper.
			var ttl int64
			if w == 3 {
				ttl = 2000
			}
			var mine []int
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if len(mine) > 1 && i%3 == 0 {
					id := mine[0]
					code, err := postJSON(client, "http://"+addr+"/v1/release",
						server.ReleaseRequest{Tenant: tenant, LeaseID: id}, nil)
					if err == nil && code == 200 {
						mu.Lock()
						released[id] = true
						mu.Unlock()
						mine = mine[1:]
					}
					continue
				}
				var ar server.AllocateResponse
				code, err := postJSON(client, "http://"+addr+"/v1/allocate",
					server.AllocateRequest{Tenant: tenant, NumGPUs: 1 + i%2, TTLMillis: ttl}, &ar)
				if err == nil && code == 200 {
					mu.Lock()
					acked[ar.LeaseID] = tenant
					if ttl > 0 {
						timed[ar.LeaseID] = true
					}
					mu.Unlock()
					mine = append(mine, ar.LeaseID)
				}
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	time.Sleep(400 * time.Millisecond)
	if err := proc.Process.Kill(); err != nil { // SIGKILL, mid-load
		t.Fatalf("SIGKILL: %v", err)
	}
	close(stop)
	wg.Wait()
	proc.Wait()
	mu.Lock()
	nAcked := len(acked)
	mu.Unlock()
	if nAcked == 0 {
		t.Fatalf("no leases acked before the kill; daemon output:\n%s", out.String())
	}

	addr2 := freeAddr(t)
	proc2, out2 := startMapad(t, bin, journalDir, addr2)
	defer func() {
		proc2.Process.Signal(syscall.SIGTERM)
		proc2.Wait()
	}()
	if !strings.Contains(out2.String(), "mapad: recovered") {
		t.Errorf("restarted daemon did not report recovery; output:\n%s", out2.String())
	}

	survivors := getLeases(t, client, addr2)
	var wantSurvive, wantReaped []int
	for id, tenant := range acked {
		if released[id] {
			if _, ok := survivors[id]; ok {
				t.Errorf("lease %d: release was acked before the kill but the lease came back", id)
			}
			continue
		}
		got, ok := survivors[id]
		if !ok {
			t.Errorf("lease %d (tenant %s): acked before the kill but lost in recovery", id, tenant)
			continue
		}
		if got.Tenant != tenant {
			t.Errorf("lease %d: recovered with owner %q, want %q", id, got.Tenant, tenant)
		}
		if timed[id] {
			if got.Deadline == 0 {
				t.Errorf("lease %d: TTL deadline lost in recovery", id)
			}
			wantReaped = append(wantReaped, id)
		} else {
			wantSurvive = append(wantSurvive, id)
		}
	}

	// Ownership enforcement survives the restart.
	if len(wantSurvive) > 0 {
		id := wantSurvive[0]
		code, _ := postJSON(client, "http://"+addr2+"/v1/renew",
			server.RenewRequest{Tenant: "interloper", LeaseID: id, TTLMillis: 60000}, nil)
		if code != http.StatusForbidden {
			t.Errorf("renew of lease %d by wrong tenant: code %d, want 403", id, code)
		}
		code, _ = postJSON(client, "http://"+addr2+"/v1/renew",
			server.RenewRequest{Tenant: acked[id], LeaseID: id, TTLMillis: 60000}, nil)
		if code != 200 {
			t.Errorf("renew of lease %d by its owner: code %d, want 200", id, code)
		}
	}

	// The restarted daemon's reaper must expire the TTL'd leases, and
	// the expiries are journaled (metrics expose the reap counter).
	if len(wantReaped) > 0 {
		deadline := time.Now().Add(10 * time.Second)
		for {
			live := getLeases(t, client, addr2)
			remaining := 0
			for _, id := range wantReaped {
				if _, ok := live[id]; ok {
					remaining++
				}
			}
			if remaining == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%d TTL'd leases still alive after reap deadline; output:\n%s", remaining, out2.String())
			}
			time.Sleep(100 * time.Millisecond)
		}
		resp, err := client.Get("http://" + addr2 + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, series := range []string{"mapad_leases_reaped_total", "mapad_leases_recovered", "mapad_journal_records_total"} {
			if !strings.Contains(string(body), series) {
				t.Errorf("metrics missing %s after recovery", series)
			}
		}
	}
}

// TestDrainRefusesNewWork: SIGTERM flips the daemon into drain mode —
// new allocates answer 503 with Retry-After — and exit cuts a final
// snapshot so the next start replays zero records.
func TestDrainRefusesNewWork(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drains a daemon binary")
	}
	bin := buildMapad(t)
	journalDir := t.TempDir()
	addr := freeAddr(t)
	proc, out := startMapad(t, bin, journalDir, addr)
	client := &http.Client{Timeout: 2 * time.Second}

	var ar server.AllocateResponse
	code, err := postJSON(client, "http://"+addr+"/v1/allocate",
		server.AllocateRequest{Tenant: "d", NumGPUs: 2}, &ar)
	if err != nil || code != 200 {
		t.Fatalf("allocate: %v code %d", err, code)
	}
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The drain window is open until Shutdown finishes closing idle
	// connections; catch it answering 503 + Retry-After.
	saw503 := false
	for i := 0; i < 100 && !saw503; i++ {
		code, err := postJSON(client, "http://"+addr+"/v1/allocate",
			server.AllocateRequest{Tenant: "d", NumGPUs: 1}, nil)
		if err != nil {
			break // listener closed — drain completed
		}
		if code == http.StatusServiceUnavailable {
			saw503 = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := proc.Wait(); err != nil {
		t.Fatalf("mapad exit: %v\n%s", err, out.String())
	}
	if !saw503 {
		t.Log("drain window closed before a 503 was observed (fast shutdown); relying on exit status + snapshot checks")
	}
	if !strings.Contains(out.String(), "mapad: drained") {
		t.Errorf("daemon did not report a clean drain; output:\n%s", out.String())
	}

	addr2 := freeAddr(t)
	proc2, out2 := startMapad(t, bin, journalDir, addr2)
	defer func() {
		proc2.Process.Signal(syscall.SIGTERM)
		proc2.Wait()
	}()
	survivors := getLeases(t, client, addr2)
	if _, ok := survivors[ar.LeaseID]; !ok {
		t.Errorf("lease %d lost across a clean drain + restart", ar.LeaseID)
	}
	if !strings.Contains(out2.String(), "recovered") {
		t.Errorf("restart did not report recovery; output:\n%s", out2.String())
	}
	if !strings.Contains(out2.String(), "(0 journal records") {
		t.Errorf("clean drain should leave zero records to replay; output:\n%s", out2.String())
	}
}
