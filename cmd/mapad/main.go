// Command mapad is the MAPA allocator daemon: a long-running HTTP
// service that leases GPUs on one machine's topology to many
// concurrent tenants, with each tenant bound to its own live-view
// stream over one shared match-universe store.
//
// Usage:
//
//	mapad -topology cluster-a100 -policy preserve -warm 5 -addr :8080 \
//	      -journal /var/lib/mapad -fsync interval -snapshot-every 30s
//
// Endpoints: POST /v1/allocate, POST /v1/release, POST /v1/renew,
// POST /v1/health (mark/restore/degrade topology events), GET
// /v1/leases, GET /healthz, GET /metrics (Prometheus text format).
// Overload answers 429 once the bounded admission queue fills;
// -coalesce merges identical (shape, size) allocate bursts into single
// decision-lock round trips. See cmd/mapaload for a load generator.
//
// With -journal, every committed mutation is written ahead to an
// append-only checksummed journal and the daemon recovers its full
// lease state — leases, owners, TTL deadlines, health marks, degraded
// links, repartition map — after a crash or restart. SIGTERM drains:
// new requests get 503 + Retry-After, in-flight requests finish, and a
// final snapshot is cut so the next start replays nothing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mapa"
	"mapa/internal/journal"
	"mapa/internal/server"
	"mapa/internal/topology"
)

// options bundles the daemon's CLI configuration.
type options struct {
	addr         string
	topoName     string
	policyName   string
	warmMaxGPUs  int
	syncWarm     bool
	workers      int
	buildWorkers int
	queueDepth   int
	coalesce     time.Duration
	maxTenants   int

	journalDir    string
	fsyncMode     string
	fsyncInterval time.Duration
	snapshotEvery time.Duration
	reapEvery     time.Duration
	requestMax    time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.topoName, "topology", "dgx-a100", "hardware topology: "+strings.Join(topology.Names(), ", ")+", cluster-a100")
	flag.StringVar(&o.policyName, "policy", "preserve", "allocation policy")
	flag.IntVar(&o.warmMaxGPUs, "warm", 5, "prewarm universes + score tables for every shape up to this size (0 disables)")
	flag.BoolVar(&o.syncWarm, "sync-warm", false, "block startup until warming completes instead of overlapping it with traffic")
	flag.IntVar(&o.workers, "workers", 0, "parallel matcher/scoring workers (<2 sequential)")
	flag.IntVar(&o.buildWorkers, "buildworkers", 0, "workers for universe builds (0 uses -workers)")
	flag.IntVar(&o.queueDepth, "queue", server.DefaultQueueDepth, "bounded admission depth; allocates beyond it get 429")
	flag.DurationVar(&o.coalesce, "coalesce", 0, "coalescing window for identical (shape,size) allocate bursts (0 disables)")
	flag.IntVar(&o.maxTenants, "max-tenants", server.DefaultMaxTenants, "max distinct tenant streams; overflow serves via the default stream")
	flag.StringVar(&o.journalDir, "journal", "", "directory for the write-ahead journal + snapshots (empty disables durability)")
	flag.StringVar(&o.fsyncMode, "fsync", "always", "journal fsync policy: always (fsync per append) or interval (background fsync)")
	flag.DurationVar(&o.fsyncInterval, "fsync-interval", 100*time.Millisecond, "background fsync cadence for -fsync=interval")
	flag.DurationVar(&o.snapshotEvery, "snapshot-every", time.Minute, "snapshot + journal-truncation cadence (0 disables periodic snapshots)")
	flag.DurationVar(&o.reapEvery, "reap-every", time.Second, "TTL-expiry reaper cadence (0 disables the reaper)")
	flag.DurationVar(&o.requestMax, "request-timeout", 30*time.Second, "per-request handler deadline")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "mapad:", err)
		os.Exit(1)
	}
}

// newServer constructs the System and serving layer for the options —
// split from run so tests can wire a daemon without binding a socket.
func newServer(o options) (*server.Server, *mapa.System, error) {
	var opts []mapa.SystemOption
	if o.warmMaxGPUs > 1 {
		opts = append(opts, mapa.WithWarmShapes(o.warmMaxGPUs))
		if !o.syncWarm {
			// Serve early traffic while universes warm: a decision for a
			// not-yet-warm shape builds it on demand, outside the
			// decision lock.
			opts = append(opts, mapa.WithBackgroundWarming())
		}
	}
	if o.workers > 1 {
		opts = append(opts, mapa.WithWorkers(o.workers))
	}
	if o.buildWorkers > 1 {
		opts = append(opts, mapa.WithBuildWorkers(o.buildWorkers))
	}
	if o.journalDir != "" {
		mode, err := journal.ParseFsyncMode(o.fsyncMode)
		if err != nil {
			return nil, nil, err
		}
		opts = append(opts, mapa.WithJournal(o.journalDir, journal.Options{
			Fsync:    mode,
			Interval: o.fsyncInterval,
		}))
	}
	sys, err := mapa.NewSystem(o.topoName, o.policyName, opts...)
	if err != nil {
		return nil, nil, err
	}
	srv := server.New(sys, server.Options{
		QueueDepth:     o.queueDepth,
		CoalesceWindow: o.coalesce,
		MaxTenants:     o.maxTenants,
	})
	return srv, sys, nil
}

func run(o options) error {
	srv, sys, err := newServer(o)
	if err != nil {
		return err
	}
	if rs := sys.Recovery(); rs.Enabled {
		fmt.Printf("mapad: recovered %d leases (%d journal records, snapshot LSN %d) in %v\n",
			rs.Leases, rs.Records, rs.SnapshotLSN, rs.ReplayTime)
		// Benchmark-format line so CI can archive recovery time next to
		// the other BENCH_*.json series.
		fmt.Printf("BenchmarkMapadRecovery 1 %d ns/op %d records %d leases\n",
			rs.ReplayTime.Nanoseconds(), rs.Records, rs.Leases)
	}

	// The handler chain enforces a per-request wall deadline on top of
	// the socket-level timeouts: a stuck handler answers 503 instead of
	// pinning its connection forever.
	var handler http.Handler = srv
	if o.requestMax > 0 {
		handler = http.TimeoutHandler(srv, o.requestMax, `{"error":"request deadline exceeded"}`)
	}
	hs := &http.Server{
		Addr:              o.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      o.requestMax + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("mapad: serving %s (%d GPUs) policy=%s on %s (warm=%v journal=%q)\n",
		sys.Topology(), sys.NumGPUs(), sys.Policy(), o.addr, sys.Warmed(), o.journalDir)

	stop := make(chan struct{})
	var maintenance []chan struct{}
	spawn := func(every time.Duration, tick func()) {
		if every <= 0 {
			return
		}
		done := make(chan struct{})
		maintenance = append(maintenance, done)
		go func() {
			defer close(done)
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					tick()
				}
			}
		}()
	}
	if o.reapEvery > 0 {
		spawn(o.reapEvery, func() {
			if n, err := srv.ReapExpired(time.Now()); err != nil {
				fmt.Fprintln(os.Stderr, "mapad: reaper:", err)
			} else if n > 0 {
				fmt.Printf("mapad: reaped %d expired leases\n", n)
			}
		})
	}
	if o.journalDir != "" && o.snapshotEvery > 0 {
		spawn(o.snapshotEvery, func() {
			if err := sys.Snapshot(); err != nil {
				fmt.Fprintln(os.Stderr, "mapad: snapshot:", err)
			}
		})
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		close(stop)
		return err
	case s := <-sig:
		fmt.Printf("mapad: %v, draining\n", s)
		// Refuse new work first (503 + Retry-After) so load balancers
		// move on, then wait out in-flight requests, stop maintenance,
		// and cut the final snapshot so the next start replays nothing.
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		close(stop)
		for _, done := range maintenance {
			<-done
		}
		if err := sys.Close(); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		fmt.Println("mapad: drained")
		return nil
	}
}
