// Command mapad is the MAPA allocator daemon: a long-running HTTP
// service that leases GPUs on one machine's topology to many
// concurrent tenants, with each tenant bound to its own live-view
// stream over one shared match-universe store.
//
// Usage:
//
//	mapad -topology cluster-a100 -policy preserve -warm 5 -addr :8080
//
// Endpoints: POST /v1/allocate, POST /v1/release, POST /v1/health
// (mark/restore/degrade topology events), GET /healthz, GET /metrics
// (Prometheus text format). Overload answers 429 once the bounded
// admission queue fills; -coalesce merges identical (shape, size)
// allocate bursts into single decision-lock round trips. See
// cmd/mapaload for a load generator.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mapa"
	"mapa/internal/server"
	"mapa/internal/topology"
)

// options bundles the daemon's CLI configuration.
type options struct {
	addr         string
	topoName     string
	policyName   string
	warmMaxGPUs  int
	syncWarm     bool
	workers      int
	buildWorkers int
	queueDepth   int
	coalesce     time.Duration
	maxTenants   int
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.topoName, "topology", "dgx-a100", "hardware topology: "+strings.Join(topology.Names(), ", ")+", cluster-a100")
	flag.StringVar(&o.policyName, "policy", "preserve", "allocation policy")
	flag.IntVar(&o.warmMaxGPUs, "warm", 5, "prewarm universes + score tables for every shape up to this size (0 disables)")
	flag.BoolVar(&o.syncWarm, "sync-warm", false, "block startup until warming completes instead of overlapping it with traffic")
	flag.IntVar(&o.workers, "workers", 0, "parallel matcher/scoring workers (<2 sequential)")
	flag.IntVar(&o.buildWorkers, "buildworkers", 0, "workers for universe builds (0 uses -workers)")
	flag.IntVar(&o.queueDepth, "queue", server.DefaultQueueDepth, "bounded admission depth; allocates beyond it get 429")
	flag.DurationVar(&o.coalesce, "coalesce", 0, "coalescing window for identical (shape,size) allocate bursts (0 disables)")
	flag.IntVar(&o.maxTenants, "max-tenants", server.DefaultMaxTenants, "max distinct tenant streams; overflow serves via the default stream")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "mapad:", err)
		os.Exit(1)
	}
}

// newServer constructs the System and serving layer for the options —
// split from run so tests can wire a daemon without binding a socket.
func newServer(o options) (*server.Server, *mapa.System, error) {
	var opts []mapa.SystemOption
	if o.warmMaxGPUs > 1 {
		opts = append(opts, mapa.WithWarmShapes(o.warmMaxGPUs))
		if !o.syncWarm {
			// Serve early traffic while universes warm: a decision for a
			// not-yet-warm shape builds it on demand, outside the
			// decision lock.
			opts = append(opts, mapa.WithBackgroundWarming())
		}
	}
	if o.workers > 1 {
		opts = append(opts, mapa.WithWorkers(o.workers))
	}
	if o.buildWorkers > 1 {
		opts = append(opts, mapa.WithBuildWorkers(o.buildWorkers))
	}
	sys, err := mapa.NewSystem(o.topoName, o.policyName, opts...)
	if err != nil {
		return nil, nil, err
	}
	srv := server.New(sys, server.Options{
		QueueDepth:     o.queueDepth,
		CoalesceWindow: o.coalesce,
		MaxTenants:     o.maxTenants,
	})
	return srv, sys, nil
}

func run(o options) error {
	srv, sys, err := newServer(o)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Addr:              o.addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("mapad: serving %s (%d GPUs) policy=%s on %s (warm=%v)\n",
		sys.Topology(), sys.NumGPUs(), sys.Policy(), o.addr, sys.Warmed())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("mapad: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
