package main

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mapa"
	"mapa/internal/server"

	"net/http/httptest"
)

func TestPercentile(t *testing.T) {
	var d []time.Duration
	for i := 1; i <= 100; i++ {
		d = append(d, time.Duration(i))
	}
	if got := percentile(d, 0.50); got != 50 {
		t.Fatalf("p50 = %d, want 50", got)
	}
	if got := percentile(d, 0.99); got != 99 {
		t.Fatalf("p99 = %d, want 99", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %d, want 0", got)
	}
}

func TestParseMixAndCold(t *testing.T) {
	mix, err := parseMix("2, 3,4")
	if err != nil || len(mix) != 3 || mix[2] != 4 {
		t.Fatalf("parseMix: %v %v", mix, err)
	}
	if _, err := parseMix(" ,"); err == nil {
		t.Fatal("want error for empty mix")
	}
	shape, n, err := parseCold("Ring:6")
	if err != nil || shape != "Ring" || n != 6 {
		t.Fatalf("parseCold: %q %d %v", shape, n, err)
	}
	if _, _, err := parseCold("Ring"); err == nil {
		t.Fatal("want error for missing size")
	}
}

func TestBackoffBounds(t *testing.T) {
	base, cap := 5*time.Millisecond, 100*time.Millisecond
	for attempt := 0; attempt < 12; attempt++ {
		d := backoff(attempt, base, cap, 0)
		if d <= 0 || d > cap {
			t.Fatalf("backoff(%d) = %v, want in (0, %v]", attempt, d, cap)
		}
	}
	if d := backoff(0, time.Millisecond, time.Millisecond, time.Second); d != time.Second {
		t.Fatalf("Retry-After floor ignored: got %v, want 1s", d)
	}
}

// TestAllocateRetriesBackpressure: 429s with Retry-After are retried
// until the daemon admits the request, and the tallies record it.
func TestAllocateRetriesBackpressure(t *testing.T) {
	var hits atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"lease_id": 7, "gpus": [0, 1]}`)
	}))
	defer ts.Close()

	cl := &client{base: ts.URL, http: ts.Client(), retries: 3,
		retryBase: time.Millisecond, retryCap: 2 * time.Millisecond}
	code, ar, err := cl.allocate("t", "Ring", 2, false)
	if err != nil || code != 200 || ar.LeaseID != 7 {
		t.Fatalf("allocate = %d %+v %v, want 200 lease 7", code, ar, err)
	}
	if got := cl.retried.Load(); got != 2 {
		t.Fatalf("retried = %d, want 2", got)
	}
	if got := cl.exhausted.Load(); got != 0 {
		t.Fatalf("exhausted = %d, want 0", got)
	}

	// Spend every retry: 503s all the way down.
	drain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer drain.Close()
	cl2 := &client{base: drain.URL, http: drain.Client(), retries: 2,
		retryBase: time.Millisecond, retryCap: 2 * time.Millisecond}
	code, _, err = cl2.allocate("t", "Ring", 2, false)
	if err != nil || code != http.StatusServiceUnavailable {
		t.Fatalf("allocate = %d %v, want 503", code, err)
	}
	if got := cl2.retried.Load(); got != 2 {
		t.Fatalf("retried = %d, want 2", got)
	}
	if got := cl2.exhausted.Load(); got != 1 {
		t.Fatalf("exhausted = %d, want 1", got)
	}
}

// TestRunClosedLoop drives a real in-process daemon with the closed-loop
// generator, including a mid-run cold-shape probe, and checks the
// benchmark output lines benchjson would parse.
func TestRunClosedLoop(t *testing.T) {
	sys, err := mapa.NewSystem("dgx-a100", "preserve", mapa.WithWarmShapes(4))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sys, server.Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var out bytes.Buffer
	o := options{
		addr:      ts.URL,
		tenants:   3,
		duration:  400 * time.Millisecond,
		gpus:      "2,3",
		shapes:    "Ring",
		sensitive: 0.5,
		hold:      2,
		coldShape: "Ring:6",
		coldAt:    0.25,
		seed:      7,
		benchout:  true,
	}
	if err := run(o, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "decisions/sec") {
		t.Fatalf("missing throughput line in:\n%s", text)
	}
	var sustained, cold bool
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "BenchmarkMapadSustained ") {
			sustained = true
			if f := strings.Fields(line); len(f) != 16 {
				t.Fatalf("sustained line has %d fields, want 16: %q", len(f), line)
			}
		}
		if strings.HasPrefix(line, "BenchmarkMapadColdOverlap ") {
			cold = true
		}
	}
	if !sustained || !cold {
		t.Fatalf("missing benchmark lines (sustained=%v cold=%v):\n%s", sustained, cold, text)
	}
	if sys.ActiveLeases() != 0 {
		t.Fatalf("generator leaked %d leases", sys.ActiveLeases())
	}
}

// TestRunOpenLoop exercises the fixed-rate arrival path.
func TestRunOpenLoop(t *testing.T) {
	sys, err := mapa.NewSystem("dgx-a100", "preserve", mapa.WithWarmShapes(3))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sys, server.Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var out bytes.Buffer
	o := options{
		addr:     ts.URL,
		tenants:  2,
		duration: 300 * time.Millisecond,
		rate:     200,
		gpus:     "2",
		shapes:   "Ring",
		hold:     2,
		seed:     1,
	}
	if err := run(o, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "open-loop") {
		t.Fatalf("missing open-loop header:\n%s", out.String())
	}
	if sys.ActiveLeases() != 0 {
		t.Fatalf("generator leaked %d leases", sys.ActiveLeases())
	}
}

func TestRunRejectsBadMix(t *testing.T) {
	if err := run(options{gpus: "x", shapes: "Ring"}, &bytes.Buffer{}); err == nil {
		t.Fatal("want error for bad GPU mix")
	}
}
