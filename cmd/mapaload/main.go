// Command mapaload is mapad's load generator: it drives a running
// daemon with synthetic multi-tenant allocate/release traffic and
// reports sustained throughput and latency percentiles.
//
// Usage:
//
//	mapaload -addr http://127.0.0.1:8080 -tenants 8 -duration 10s
//	mapaload -rate 2000 -gpus 2,3,4 -shapes Ring,AllToAll
//	mapaload -coldshape Ring:6 -benchout   # cold-build overlap probe
//
// Closed-loop mode (default): each tenant runs a feedback loop holding
// up to -hold leases, allocating and releasing as fast as the daemon
// answers. Open-loop mode (-rate > 0) fires allocate+release pairs at
// a fixed aggregate rate regardless of response latency, the way real
// arrival processes do, and reports drops when the in-flight cap is
// hit.
//
// With -coldshape, one request for an expensive never-warmed shape
// fires mid-run: the daemon builds that shape's universe while normal
// traffic continues, and the report shows warmed-path throughput
// inside the build window — the no-full-system-stall check.
//
// With -benchout, results are also printed as Go benchmark result
// lines so `mapaload -benchout | benchjson` archives them (the CI
// BENCH_mapad.json artifact).
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mapa"
	"mapa/internal/policy"
)

// options bundles the load generator's CLI configuration.
type options struct {
	addr          string
	tenants       int
	duration      time.Duration
	rate          float64
	gpus          string
	shapes        string
	sensitive     float64
	hold          int
	coldShape     string
	coldAt        float64
	seed          int64
	benchout      bool
	fleetNodes    int
	fleetTemplate string
	fleetPolicy   string
	retries       int
	retryBase     time.Duration
	retryCap      time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "http://127.0.0.1:8080", "mapad base URL")
	flag.IntVar(&o.tenants, "tenants", 8, "concurrent tenant loops")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "run length")
	flag.Float64Var(&o.rate, "rate", 0, "open-loop aggregate request rate per second (0 = closed loop)")
	flag.StringVar(&o.gpus, "gpus", "2,3,4", "comma-separated GPU counts to mix uniformly")
	flag.StringVar(&o.shapes, "shapes", "Ring", "comma-separated shapes to mix uniformly")
	flag.Float64Var(&o.sensitive, "sensitive", 0.5, "fraction of requests marked bandwidth-sensitive")
	flag.IntVar(&o.hold, "hold", 4, "closed loop: max outstanding leases per tenant")
	flag.StringVar(&o.coldShape, "coldshape", "", "shape:size to request once mid-run, forcing a cold universe build (e.g. Ring:6)")
	flag.Float64Var(&o.coldAt, "coldat", 0.5, "when to fire the cold request, as a fraction of -duration")
	flag.Int64Var(&o.seed, "seed", 1, "request-mix seed")
	flag.BoolVar(&o.benchout, "benchout", false, "also print Go benchmark result lines for benchjson")
	flag.IntVar(&o.fleetNodes, "fleet", 0, "drive an in-process FleetSystem of this many nodes instead of a daemon (closed loop; -addr/-rate/-coldshape ignored)")
	flag.StringVar(&o.fleetTemplate, "fleettemplate", "dgx-a100", "node-template topology for -fleet")
	flag.StringVar(&o.fleetPolicy, "fleetpolicy", "preserve", "allocation policy for -fleet")
	flag.IntVar(&o.retries, "retries", 3, "allocate retries on 429/503 before giving up (0 disables)")
	flag.DurationVar(&o.retryBase, "retry-base", 5*time.Millisecond, "first retry backoff; doubles per attempt with jitter")
	flag.DurationVar(&o.retryCap, "retry-cap", 250*time.Millisecond, "backoff ceiling; a server Retry-After overrides the computed delay")
	flag.Parse()

	run := run
	if o.fleetNodes > 0 {
		run = runFleet
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mapaload:", err)
		os.Exit(1)
	}
}

// sample is one completed allocate decision.
type sample struct {
	latency time.Duration
	done    time.Time
}

// counters aggregates one worker's outcome tallies.
type counters struct {
	ok, noalloc, throttled, failed int
}

func (c *counters) add(d counters) {
	c.ok += d.ok
	c.noalloc += d.noalloc
	c.throttled += d.throttled
	c.failed += d.failed
}

// client wraps the two mapad calls the generator makes. Allocates that
// bounce off backpressure (429 admission overflow, 503 drain) retry
// with capped exponential backoff + jitter, honoring a server
// Retry-After; retried and exhausted tallies feed the run summary.
type client struct {
	base      string
	http      *http.Client
	retries   int
	retryBase time.Duration
	retryCap  time.Duration
	retried   atomic.Uint64 // attempts re-fired after backpressure
	exhausted atomic.Uint64 // allocates dropped with retries spent
}

type allocateResponse struct {
	LeaseID int   `json:"lease_id"`
	GPUs    []int `json:"gpus"`
}

// retryable reports whether the status is a backpressure signal worth
// backing off on, rather than a decision outcome.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// backoff computes the sleep before retry attempt (0-based): the
// doubled-per-attempt base, capped, with full jitter on the upper
// half; a server-provided Retry-After acts as a floor.
func backoff(attempt int, base, cap, retryAfter time.Duration) time.Duration {
	d := base << attempt
	if d > cap || d <= 0 {
		d = cap
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// allocate returns the HTTP status code and, on 200, the lease.
func (c *client) allocate(tenant, shape string, n int, sensitive bool) (int, allocateResponse, error) {
	code, retryAfter, ar, err := c.allocateOnce(tenant, shape, n, sensitive)
	for attempt := 0; attempt < c.retries && err == nil && retryable(code); attempt++ {
		time.Sleep(backoff(attempt, c.retryBase, c.retryCap, retryAfter))
		c.retried.Add(1)
		code, retryAfter, ar, err = c.allocateOnce(tenant, shape, n, sensitive)
	}
	if c.retries > 0 && err == nil && retryable(code) {
		c.exhausted.Add(1)
	}
	return code, ar, err
}

func (c *client) allocateOnce(tenant, shape string, n int, sensitive bool) (int, time.Duration, allocateResponse, error) {
	body, _ := json.Marshal(map[string]interface{}{
		"tenant": tenant, "num_gpus": n, "shape": shape, "sensitive": sensitive,
	})
	resp, err := c.http.Post(c.base+"/v1/allocate", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, allocateResponse{}, err
	}
	defer resp.Body.Close()
	var ar allocateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			return resp.StatusCode, 0, ar, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	var retryAfter time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter, ar, nil
}

func (c *client) release(tenant string, leaseID int) error {
	body, _ := json.Marshal(map[string]interface{}{"tenant": tenant, "lease_id": leaseID})
	resp, err := c.http.Post(c.base+"/v1/release", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}

// summary is one run's aggregate result.
type summary struct {
	counters
	elapsed    time.Duration
	latencies  []time.Duration // successful allocates, unsorted
	p50        time.Duration
	p90        time.Duration
	p99        time.Duration
	mean       time.Duration
	rate       float64 // successful decisions/sec over the run
	dropped    int     // open loop: fires skipped at the in-flight cap
	retried    uint64  // allocate attempts re-fired after 429/503 backoff
	exhausted  uint64  // allocates dropped with all retries spent
	coldBuild  time.Duration
	coldOK     int     // decisions completed inside the cold window
	coldRate   float64 // decisions/sec inside the cold window
	coldMean   time.Duration
	coldServed bool
}

// percentile returns the q-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// parseMix parses a comma-separated int list.
func parseMix(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad GPU count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty GPU mix")
	}
	return out, nil
}

// parseCold parses "Shape:size".
func parseCold(s string) (string, int, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return "", 0, fmt.Errorf("coldshape must be shape:size, got %q", s)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, fmt.Errorf("bad coldshape size %q", parts[1])
	}
	return parts[0], n, nil
}

func run(o options, w io.Writer) error {
	sizes, err := parseMix(o.gpus)
	if err != nil {
		return err
	}
	shapes := strings.Split(o.shapes, ",")
	for i := range shapes {
		shapes[i] = strings.TrimSpace(shapes[i])
	}
	if o.retryBase <= 0 {
		o.retryBase = 5 * time.Millisecond
	}
	if o.retryCap < o.retryBase {
		o.retryCap = o.retryBase
	}
	cl := &client{
		base: strings.TrimRight(o.addr, "/"),
		http: &http.Client{
			Timeout: 2 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        4 * o.tenants,
				MaxIdleConnsPerHost: 4 * o.tenants,
			},
		},
		retries:   o.retries,
		retryBase: o.retryBase,
		retryCap:  o.retryCap,
	}

	start := time.Now()
	deadline := start.Add(o.duration)
	var (
		mu      sync.Mutex
		samples []sample
		total   counters
		dropped int
	)
	record := func(s sample, c counters) {
		mu.Lock()
		if s.latency > 0 {
			samples = append(samples, s)
		}
		total.add(c)
		mu.Unlock()
	}

	// Cold-build probe: one expensive never-warmed shape fired mid-run.
	var coldStart, coldEnd time.Time
	var coldWG sync.WaitGroup
	if o.coldShape != "" {
		shape, n, err := parseCold(o.coldShape)
		if err != nil {
			return err
		}
		coldWG.Add(1)
		go func() {
			defer coldWG.Done()
			time.Sleep(time.Duration(o.coldAt * float64(o.duration)))
			coldStart = time.Now()
			code, ar, err := cl.allocate("cold-probe", shape, n, true)
			coldEnd = time.Now()
			if err == nil && code == http.StatusOK {
				cl.release("cold-probe", ar.LeaseID)
			}
		}()
	}

	var wg sync.WaitGroup
	if o.rate > 0 {
		// Open loop: fire allocate+release pairs at a fixed aggregate
		// rate from a pacing clock; each fire runs in its own goroutine
		// up to an in-flight cap, past which fires are dropped (and
		// reported) rather than queued — the load does not slow down
		// because the server does.
		inflight := make(chan struct{}, 8*o.tenants)
		interval := time.Duration(float64(time.Second) / o.rate)
		rng := rand.New(rand.NewSource(o.seed))
		for i := 0; time.Now().Before(deadline); i++ {
			tenant := fmt.Sprintf("tenant-%d", i%o.tenants)
			n := sizes[rng.Intn(len(sizes))]
			shape := shapes[rng.Intn(len(shapes))]
			sens := rng.Float64() < o.sensitive
			select {
			case inflight <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-inflight }()
					var c counters
					t0 := time.Now()
					code, ar, err := cl.allocate(tenant, shape, n, sens)
					lat := time.Since(t0)
					s := sample{}
					switch {
					case err != nil:
						c.failed++
					case code == http.StatusOK:
						c.ok++
						s = sample{latency: lat, done: time.Now()}
						cl.release(tenant, ar.LeaseID)
					case code == http.StatusConflict:
						c.noalloc++
					case retryable(code):
						c.throttled++
					default:
						c.failed++
					}
					record(s, c)
				}()
			default:
				mu.Lock()
				dropped++
				mu.Unlock()
			}
			time.Sleep(interval)
		}
	} else {
		// Closed loop: each tenant holds up to -hold leases and churns
		// allocate/release as fast as the daemon answers.
		for w := 0; w < o.tenants; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(o.seed + int64(w)))
				tenant := fmt.Sprintf("tenant-%d", w)
				var leases []int
				var c counters
				var local []sample
				for time.Now().Before(deadline) {
					if len(leases) < o.hold && (len(leases) == 0 || rng.Intn(2) == 0) {
						n := sizes[rng.Intn(len(sizes))]
						shape := shapes[rng.Intn(len(shapes))]
						t0 := time.Now()
						code, ar, err := cl.allocate(tenant, shape, n, rng.Float64() < o.sensitive)
						lat := time.Since(t0)
						switch {
						case err != nil:
							c.failed++
						case code == http.StatusOK:
							c.ok++
							local = append(local, sample{latency: lat, done: time.Now()})
							leases = append(leases, ar.LeaseID)
						case code == http.StatusConflict:
							c.noalloc++
							if len(leases) > 0 {
								cl.release(tenant, leases[0])
								leases = leases[1:]
							}
						case retryable(code):
							c.throttled++
							time.Sleep(time.Millisecond)
						default:
							c.failed++
						}
					} else if len(leases) > 0 {
						cl.release(tenant, leases[0])
						leases = leases[1:]
					}
				}
				for _, id := range leases {
					cl.release(tenant, id)
				}
				for _, s := range local {
					record(s, counters{})
				}
				record(sample{}, c)
			}(w)
		}
	}
	wg.Wait()
	coldWG.Wait()
	elapsed := time.Since(start)

	sum := summarize(samples, total, elapsed, dropped)
	sum.retried = cl.retried.Load()
	sum.exhausted = cl.exhausted.Load()
	if o.coldShape != "" && !coldEnd.IsZero() {
		sum.coldServed = true
		sum.coldBuild = coldEnd.Sub(coldStart)
		var coldLat time.Duration
		for _, s := range samples {
			if s.done.After(coldStart) && s.done.Before(coldEnd) {
				sum.coldOK++
				coldLat += s.latency
			}
		}
		if sum.coldBuild > 0 {
			sum.coldRate = float64(sum.coldOK) / sum.coldBuild.Seconds()
		}
		if sum.coldOK > 0 {
			sum.coldMean = coldLat / time.Duration(sum.coldOK)
		}
	}
	report(o, w, sum)
	return nil
}

// summarize folds raw samples and tallies into a run summary with
// latency percentiles and sustained throughput.
func summarize(samples []sample, total counters, elapsed time.Duration, dropped int) summary {
	sum := summary{counters: total, elapsed: elapsed, dropped: dropped}
	sorted := make([]time.Duration, len(samples))
	var totalLat time.Duration
	for i, s := range samples {
		sorted[i] = s.latency
		totalLat += s.latency
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	sum.p50 = percentile(sorted, 0.50)
	sum.p90 = percentile(sorted, 0.90)
	sum.p99 = percentile(sorted, 0.99)
	if len(sorted) > 0 {
		sum.mean = totalLat / time.Duration(len(sorted))
	}
	sum.rate = float64(total.ok) / elapsed.Seconds()
	return sum
}

// runFleet is the -fleet mode: instead of talking HTTP to a daemon, it
// constructs a FleetSystem in-process — node-symmetric templates, the
// hierarchical two-level decision path — and churns it with the same
// closed-loop tenant structure. This measures the fleet decision path
// itself at sizes no flattened daemon instance could host (the flat
// pipeline is only materialized up to FleetFlattenLimit GPUs).
func runFleet(o options, w io.Writer) error {
	sizes, err := parseMix(o.gpus)
	if err != nil {
		return err
	}
	shapes := strings.Split(o.shapes, ",")
	maxSize := 0
	for i := range shapes {
		shapes[i] = strings.TrimSpace(shapes[i])
	}
	for _, n := range sizes {
		if n > maxSize {
			maxSize = n
		}
	}
	fs, err := mapa.NewFleetSystem(o.fleetTemplate, o.fleetNodes, o.fleetPolicy,
		mapa.WithWarmShapes(maxSize))
	if err != nil {
		return err
	}

	start := time.Now()
	deadline := start.Add(o.duration)
	var (
		mu      sync.Mutex
		samples []sample
		total   counters
	)
	var wg sync.WaitGroup
	for t := 0; t < o.tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.seed + int64(t)))
			var leases []*mapa.Lease
			var c counters
			var local []sample
			for time.Now().Before(deadline) {
				if len(leases) < o.hold && (len(leases) == 0 || rng.Intn(2) == 0) {
					req := mapa.JobRequest{
						NumGPUs:   sizes[rng.Intn(len(sizes))],
						Shape:     shapes[rng.Intn(len(shapes))],
						Sensitive: rng.Float64() < o.sensitive,
					}
					t0 := time.Now()
					lease, err := fs.Allocate(req)
					lat := time.Since(t0)
					switch {
					case err == nil:
						c.ok++
						local = append(local, sample{latency: lat, done: time.Now()})
						leases = append(leases, lease)
					case errors.Is(err, policy.ErrNoAllocation):
						c.noalloc++
						if len(leases) > 0 {
							fs.Release(leases[0])
							leases = leases[1:]
						}
					default:
						c.failed++
					}
				} else if len(leases) > 0 {
					fs.Release(leases[0])
					leases = leases[1:]
				}
			}
			for _, l := range leases {
				fs.Release(l)
			}
			mu.Lock()
			samples = append(samples, local...)
			total.add(c)
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := summarize(samples, total, elapsed, 0)
	report(o, w, sum)
	st := fs.Stats()
	fmt.Fprintf(w, "  fleet: %d nodes, %d template universes / %d tables (built in %s); %d hierarchical, %d flat-fallback\n",
		fs.NumNodes(), st.TemplateUniverses, st.TemplateTables,
		(st.TemplateBuildTime + st.TemplateTableTime).Round(time.Millisecond),
		st.HierarchicalServed, st.FlatServed)
	return nil
}

func report(o options, w io.Writer, s summary) {
	mode := "closed-loop"
	if o.rate > 0 {
		mode = fmt.Sprintf("open-loop %.0f req/s", o.rate)
	}
	if o.fleetNodes > 0 {
		mode = fmt.Sprintf("in-process fleet (%d × %s, %s policy)", o.fleetNodes, o.fleetTemplate, o.fleetPolicy)
	}
	fmt.Fprintf(w, "mapaload: %s, %d tenants, %s\n", mode, o.tenants, s.elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  decisions: %d ok, %d no-allocation, %d throttled (429/503), %d failed, %d dropped\n",
		s.ok, s.noalloc, s.throttled, s.failed, s.dropped)
	if s.retried > 0 || s.exhausted > 0 {
		fmt.Fprintf(w, "  backpressure: %d attempts retried, %d allocates exhausted retries\n",
			s.retried, s.exhausted)
	}
	fmt.Fprintf(w, "  throughput: %.1f decisions/sec\n", s.rate)
	fmt.Fprintf(w, "  allocate latency: mean %s  p50 %s  p90 %s  p99 %s\n", s.mean, s.p50, s.p90, s.p99)
	if s.coldServed {
		fmt.Fprintf(w, "  cold build (%s): %s wall; traffic during build: %d decisions (%.1f/sec, mean %s)\n",
			o.coldShape, s.coldBuild.Round(time.Millisecond), s.coldOK, s.coldRate, s.coldMean)
	}
	if !o.benchout {
		return
	}
	// Go benchmark result lines, parseable by cmd/benchjson: name,
	// iteration count, then value/unit pairs.
	name := "BenchmarkMapadSustained"
	if o.fleetNodes > 0 {
		name = fmt.Sprintf("BenchmarkFleetSustained/nodes-%d", o.fleetNodes)
	}
	fmt.Fprintf(w, "%s %d %d ns/op %.1f decisions/sec %d p50-ns %d p90-ns %d p99-ns %d retried %d retry-exhausted\n",
		name, s.ok, s.mean.Nanoseconds(), s.rate, s.p50.Nanoseconds(), s.p90.Nanoseconds(), s.p99.Nanoseconds(),
		s.retried, s.exhausted)
	if s.coldServed {
		fmt.Fprintf(w, "BenchmarkMapadColdOverlap %d %d ns/op %.1f decisions/sec %d cold-build-ns\n",
			s.coldOK, s.coldMean.Nanoseconds(), s.coldRate, s.coldBuild.Nanoseconds())
	}
}
