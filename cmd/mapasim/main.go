// Command mapasim runs a job file through the MAPA multi-tenant
// scheduling simulator (Fig. 14 of the paper) on a chosen hardware
// topology under a chosen allocation policy, then prints the job log
// and summary statistics.
//
// Usage:
//
//	mapasim -topology dgx-v100 -policy preserve -jobs jobs.txt
//	mapasim -topology torus-2d -policy all -n 300 -seed 1
//
// With -policy all, the paper's four policies run on the same job
// stream and a Table 3-style comparison is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"mapa/internal/appgraph"
	"mapa/internal/graph"
	"mapa/internal/jobs"
	"mapa/internal/sched"
	"mapa/internal/stats"
	"mapa/internal/topology"
)

// options bundles the CLI configuration of one simulator run.
type options struct {
	topoName     string
	fleetNodes   int
	policyName   string
	jobFile      string
	n            int
	seed         int64
	maxGPUs      int
	workers      int
	buildWorkers int
	cache        bool
	universes    bool
	liveviews    bool
	scoretables  bool
	warm         bool
	cacheStats   bool
	verbose      bool
	faultProb    float64
	faultDown    float64
	faultSeed    int64
	cpuProfile   string
	memProfile   string
}

func main() {
	var o options
	flag.StringVar(&o.topoName, "topology", "dgx-v100", "hardware topology: "+strings.Join(topology.Names(), ", "))
	flag.IntVar(&o.fleetNodes, "fleet", 0, "treat -topology as a node template and simulate a fleet of this many nodes (flattened machine)")
	flag.StringVar(&o.policyName, "policy", "preserve", "allocation policy, or 'all' for the paper's four")
	flag.StringVar(&o.jobFile, "jobs", "", "job file path (empty generates a random mix)")
	flag.IntVar(&o.n, "n", 300, "generated job count when -jobs is empty")
	flag.Int64Var(&o.seed, "seed", 1, "generation seed when -jobs is empty")
	flag.IntVar(&o.maxGPUs, "max-gpus", 5, "max GPUs per generated job")
	flag.IntVar(&o.workers, "workers", 1, "parallel matcher/scoring workers for MAPA policies (<2 sequential)")
	flag.IntVar(&o.buildWorkers, "buildworkers", 0, "workers for idle-state universe builds (cost-partitioned work stealing; 0 uses -workers)")
	flag.BoolVar(&o.cache, "cache", true, "reuse candidate lists across recurring free-GPU states (tier 2)")
	flag.BoolVar(&o.universes, "universes", true, "derive new-state candidates by filtering idle-state universes (tier 1)")
	flag.BoolVar(&o.liveviews, "liveviews", true, "maintain per-shape candidate views incrementally from allocate/release deltas (tier 0)")
	flag.BoolVar(&o.scoretables, "scoretables", true, "precompute per-shape score tables so warmed decisions select by table lookups + O(k) arithmetic")
	flag.BoolVar(&o.warm, "warm", false, "prewarm idle-state universes for every shape up to -max-gpus before scheduling")
	flag.BoolVar(&o.cacheStats, "cachestats", false, "print match-pipeline hit/miss/eviction/filter counters per policy")
	flag.Float64Var(&o.faultProb, "faults", 0, "per-completion probability a free GPU faults (0 disables fault churn)")
	flag.Float64Var(&o.faultDown, "fault-down", 300, "seconds a faulted GPU stays unallocatable before recovering")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "seed of the fault/recovery process")
	flag.BoolVar(&o.verbose, "v", false, "print the per-job log")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a post-run heap profile to this file")
	flag.Parse()

	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapasim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mapasim:", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	err := run(o)

	if o.memProfile != "" {
		// Collect the live heap after a GC so the profile shows what
		// the run retains, not transient garbage awaiting collection.
		runtime.GC()
		f, ferr := os.Create(o.memProfile)
		if ferr == nil {
			ferr = pprof.WriteHeapProfile(f)
			f.Close()
		}
		if ferr != nil && err == nil {
			err = ferr
		}
	}

	if err != nil {
		if o.cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		fmt.Fprintln(os.Stderr, "mapasim:", err)
		os.Exit(1)
	}
}

// warmPatterns builds every built-in shape at sizes 2..maxGPUs
// (clamped to the machine) for universe prewarming.
func warmPatterns(top *topology.Topology, maxGPUs int) []*graph.Graph {
	if maxGPUs > top.NumGPUs() {
		maxGPUs = top.NumGPUs()
	}
	return appgraph.AllShapes(maxGPUs)
}

func run(o options) error {
	top, err := topology.ByName(o.topoName)
	if err != nil {
		return err
	}
	if o.fleetNodes > 0 {
		// The simulator drives the flat engine, so a fleet request is
		// served by the flattened machine: -topology names the node
		// template, inter-node pairs get the PCIe-class fallback.
		top = topology.NewFleet(top, o.fleetNodes).Flatten()
	}
	var jobList []jobs.Job
	if o.jobFile != "" {
		f, err := os.Open(o.jobFile)
		if err != nil {
			return err
		}
		defer f.Close()
		jobList, err = jobs.Parse(f)
		if err != nil {
			return err
		}
	} else {
		jobList, err = jobs.Generate(jobs.GenerateConfig{N: o.n, MaxGPUs: o.maxGPUs, Seed: o.seed})
		if err != nil {
			return err
		}
	}

	policies := []string{o.policyName}
	if o.policyName == "all" {
		policies = sched.PaperPolicies()
	}
	cfg := sched.CompareConfig{
		Mode:               sched.ModeRealRun,
		Workers:            o.workers,
		BuildWorkers:       o.buildWorkers,
		DisableCache:       !o.cache,
		DisableUniverses:   !o.universes,
		DisableLiveViews:   !o.liveviews,
		DisableScoreTables: !o.scoretables,
	}
	if o.warm && o.universes {
		cfg.WarmPatterns = warmPatterns(top, o.maxGPUs)
	}
	if o.faultProb > 0 {
		cfg.Faults = &sched.FaultPlan{Seed: o.faultSeed, FailProb: o.faultProb, Down: o.faultDown}
	}
	results, pipeStats, storeStats, err := sched.ComparePoliciesInstrumented(top, policies, jobList, cfg)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		res := results[name]
		fmt.Printf("== %s on %s: %d jobs, makespan %.0f s, throughput %.3f jobs/ks\n",
			name, top.Name, len(res.Records), res.Makespan, res.Throughput)
		if o.cacheStats {
			if ps, ok := pipeStats[name]; ok {
				cs := ps.Cache
				fmt.Printf("  match cache: %d hits, %d misses, %d evictions, %d entries in %d shards\n",
					cs.Hits, cs.Misses, cs.Evictions, cs.Entries, cs.Shards)
				vs := ps.Views
				fmt.Printf("  live views: %d views, %d misses view-served (%d by score table), %d rejected\n",
					vs.Views, vs.Served, vs.TableServed, vs.Rejected)
			}
		}
		if o.verbose {
			fmt.Println("  id  workload      gpus             start      end   effBW(pred)")
			for _, r := range res.Records {
				fmt.Printf("  %-3d %-12s %-16v %8.0f %8.0f %8.2f\n",
					r.Job.ID, r.Job.Workload, r.GPUs, r.Start, r.End, r.PredictedEffBW)
			}
		}
		for _, sensitive := range []bool{true, false} {
			recs := sched.FilterMultiGPU(sched.FilterSensitive(res.Records, sensitive))
			if len(recs) == 0 {
				continue
			}
			fmt.Printf("  %s exec time:  %s\n", sched.SensitivityLabel(sensitive),
				stats.Summarize(sched.ExecTimes(recs)))
			fmt.Printf("  %s eff BW:     %s\n", sched.SensitivityLabel(sensitive),
				stats.Summarize(sched.PredictedEffBWs(recs)))
		}
	}

	if o.cacheStats && storeStats != nil {
		fmt.Printf("universe store (shared): %d universes (%d incomplete), %d misses filter-served, %d rejected\n",
			storeStats.Universes, storeStats.Incomplete, storeStats.FilterServed, storeStats.FilterRejected)
		if len(storeStats.Builds) > 0 {
			fmt.Printf("universe builds: %d shapes in %v total; %d score tables in %v\n",
				len(storeStats.Builds), storeStats.BuildTime, storeStats.Tables, storeStats.TableTime)
			for _, bld := range storeStats.Builds {
				state := "complete"
				if !bld.Complete {
					state = "incomplete"
				}
				plan := "static"
				if bld.Calibrated {
					plan = "calibrated"
				}
				fmt.Printf("  shape %dv/%de: %d classes (%s) in %v, workers=%d, %s plan imbalance %.2f, claimed %.2f\n",
					bld.Vertices, bld.Edges, bld.Classes, state, bld.Duration, bld.Workers, plan, bld.PlanImbalance, bld.CostImbalance)
			}
		}
	}

	if len(results) > 1 {
		rows, err := sched.Table3(results, "baseline")
		if err != nil {
			return err
		}
		fmt.Println("\nTable 3 — execution-time speedup over baseline (sensitive multi-GPU jobs):")
		fmt.Print(sched.FormatTable3(rows))
	}
	return nil
}
