// Command mapasim runs a job file through the MAPA multi-tenant
// scheduling simulator (Fig. 14 of the paper) on a chosen hardware
// topology under a chosen allocation policy, then prints the job log
// and summary statistics.
//
// Usage:
//
//	mapasim -topology dgx-v100 -policy preserve -jobs jobs.txt
//	mapasim -topology torus-2d -policy all -n 300 -seed 1
//
// With -policy all, the paper's four policies run on the same job
// stream and a Table 3-style comparison is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mapa/internal/jobs"
	"mapa/internal/sched"
	"mapa/internal/stats"
	"mapa/internal/topology"
)

func main() {
	var (
		topoName   = flag.String("topology", "dgx-v100", "hardware topology: "+strings.Join(topology.Names(), ", "))
		policyName = flag.String("policy", "preserve", "allocation policy, or 'all' for the paper's four")
		jobFile    = flag.String("jobs", "", "job file path (empty generates a random mix)")
		n          = flag.Int("n", 300, "generated job count when -jobs is empty")
		seed       = flag.Int64("seed", 1, "generation seed when -jobs is empty")
		maxGPUs    = flag.Int("max-gpus", 5, "max GPUs per generated job")
		workers    = flag.Int("workers", 1, "parallel matcher/scoring workers for MAPA policies (<2 sequential)")
		cache      = flag.Bool("cache", true, "reuse pattern enumerations across recurring free-GPU states")
		verbose    = flag.Bool("v", false, "print the per-job log")
	)
	flag.Parse()

	if err := run(*topoName, *policyName, *jobFile, *n, *seed, *maxGPUs, *workers, *cache, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "mapasim:", err)
		os.Exit(1)
	}
}

func run(topoName, policyName, jobFile string, n int, seed int64, maxGPUs, workers int, cache, verbose bool) error {
	top, err := topology.ByName(topoName)
	if err != nil {
		return err
	}
	var jobList []jobs.Job
	if jobFile != "" {
		f, err := os.Open(jobFile)
		if err != nil {
			return err
		}
		defer f.Close()
		jobList, err = jobs.Parse(f)
		if err != nil {
			return err
		}
	} else {
		jobList, err = jobs.Generate(jobs.GenerateConfig{N: n, MaxGPUs: maxGPUs, Seed: seed})
		if err != nil {
			return err
		}
	}

	policies := []string{policyName}
	if policyName == "all" {
		policies = sched.PaperPolicies()
	}
	results, err := sched.ComparePoliciesConfig(top, policies, jobList, sched.CompareConfig{
		Mode:         sched.ModeRealRun,
		Workers:      workers,
		DisableCache: !cache,
	})
	if err != nil {
		return err
	}

	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		res := results[name]
		fmt.Printf("== %s on %s: %d jobs, makespan %.0f s, throughput %.3f jobs/ks\n",
			name, top.Name, len(res.Records), res.Makespan, res.Throughput)
		if verbose {
			fmt.Println("  id  workload      gpus             start      end   effBW(pred)")
			for _, r := range res.Records {
				fmt.Printf("  %-3d %-12s %-16v %8.0f %8.0f %8.2f\n",
					r.Job.ID, r.Job.Workload, r.GPUs, r.Start, r.End, r.PredictedEffBW)
			}
		}
		for _, sensitive := range []bool{true, false} {
			recs := sched.FilterMultiGPU(sched.FilterSensitive(res.Records, sensitive))
			if len(recs) == 0 {
				continue
			}
			fmt.Printf("  %s exec time:  %s\n", sched.SensitivityLabel(sensitive),
				stats.Summarize(sched.ExecTimes(recs)))
			fmt.Printf("  %s eff BW:     %s\n", sched.SensitivityLabel(sensitive),
				stats.Summarize(sched.PredictedEffBWs(recs)))
		}
	}

	if len(results) > 1 {
		rows, err := sched.Table3(results, "baseline")
		if err != nil {
			return err
		}
		fmt.Println("\nTable 3 — execution-time speedup over baseline (sensitive multi-GPU jobs):")
		fmt.Print(sched.FormatTable3(rows))
	}
	return nil
}
