package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunGeneratedMix(t *testing.T) {
	if err := run("dgx-v100", "preserve", "", 20, 1, 5, 1, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllPoliciesVerbose(t *testing.T) {
	if err := run("summit", "all", "", 15, 2, 4, 1, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelUncached(t *testing.T) {
	if err := run("dgx-v100", "preserve", "", 15, 3, 4, 4, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunJobFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.txt")
	content := "1,vgg-16,2,Ring,true,100\n2,gmm,1,Star,false,100\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("dgx-v100", "greedy", path, 0, 0, 0, 1, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("warpcore", "preserve", "", 5, 1, 5, 1, true, false); err == nil {
		t.Error("unknown topology should error")
	}
	if err := run("dgx-v100", "warp-policy", "", 5, 1, 5, 1, true, false); err == nil {
		t.Error("unknown policy should error")
	}
	if err := run("dgx-v100", "preserve", "/no/such/file", 5, 1, 5, 1, true, false); err == nil {
		t.Error("missing job file should error")
	}
	if err := run("dgx-v100", "preserve", "", 0, 1, 5, 1, true, false); err == nil {
		t.Error("zero jobs should error")
	}
}
