package main

import (
	"os"
	"path/filepath"
	"testing"
)

// opts returns a baseline options value for tests; the two-tier match
// pipeline is on, matching the CLI defaults.
func opts() options {
	return options{
		topoName:   "dgx-v100",
		policyName: "preserve",
		n:          20,
		seed:       1,
		maxGPUs:    5,
		workers:    1,
		cache:      true,
		universes:  true,
	}
}

func TestRunGeneratedMix(t *testing.T) {
	if err := run(opts()); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllPoliciesVerbose(t *testing.T) {
	o := opts()
	o.topoName = "summit"
	o.policyName = "all"
	o.n = 15
	o.seed = 2
	o.maxGPUs = 4
	o.verbose = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelUncached(t *testing.T) {
	o := opts()
	o.n = 15
	o.seed = 3
	o.maxGPUs = 4
	o.workers = 4
	o.cache = false
	o.universes = false
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunWarmedWithCacheStats(t *testing.T) {
	o := opts()
	o.n = 15
	o.maxGPUs = 4
	o.warm = true
	o.cacheStats = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunBuildWorkersWarmed(t *testing.T) {
	o := opts()
	o.n = 15
	o.maxGPUs = 4
	o.buildWorkers = 4
	o.warm = true
	o.cacheStats = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunJobFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.txt")
	content := "1,vgg-16,2,Ring,true,100\n2,gmm,1,Star,false,100\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	o := opts()
	o.policyName = "greedy"
	o.jobFile = path
	o.n = 0
	o.seed = 0
	o.maxGPUs = 0
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	o := opts()
	o.topoName = "warpcore"
	if err := run(o); err == nil {
		t.Error("unknown topology should error")
	}
	o = opts()
	o.policyName = "warp-policy"
	if err := run(o); err == nil {
		t.Error("unknown policy should error")
	}
	o = opts()
	o.jobFile = "/no/such/file"
	if err := run(o); err == nil {
		t.Error("missing job file should error")
	}
	o = opts()
	o.n = 0
	if err := run(o); err == nil {
		t.Error("zero jobs should error")
	}
}
