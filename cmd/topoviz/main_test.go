package main

import (
	"strings"
	"testing"
)

func TestRunMatrix(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "dgx-v100", false, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"DGX-1-V100", "GPU7", "Double NVLink-v2", "socket 1", "125 GB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunDOT(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "summit", true, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "graph \"Summit\"") {
		t.Fatalf("DOT output wrong: %s", b.String())
	}
}

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "", false, true); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dgx-v100", "torus-2d", "cubemesh-16"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunUnknownTopology(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "warpcore", false, false); err == nil {
		t.Fatal("unknown topology should error")
	}
}
