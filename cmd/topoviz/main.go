// Command topoviz inspects the built-in hardware topologies: it prints
// the nvidia-smi-style link matrix, link inventories, socket layout,
// and optionally Graphviz DOT for rendering.
//
// Usage:
//
//	topoviz -topology dgx-v100
//	topoviz -topology cubemesh-16 -dot > cubemesh.dot
//	topoviz -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mapa/internal/topology"
)

func main() {
	var (
		name = flag.String("topology", "dgx-v100", "topology: "+strings.Join(topology.Names(), ", "))
		dot  = flag.Bool("dot", false, "emit Graphviz DOT of the physical links")
		list = flag.Bool("list", false, "list available topologies")
	)
	flag.Parse()

	if err := run(os.Stdout, *name, *dot, *list); err != nil {
		fmt.Fprintln(os.Stderr, "topoviz:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, name string, dot, list bool) error {
	if list {
		for _, n := range topology.Names() {
			top, err := topology.ByName(n)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-12s %2d GPUs, %2d physical links\n", n, top.NumGPUs(), top.Physical.NumEdges())
		}
		return nil
	}

	top, err := topology.ByName(name)
	if err != nil {
		return err
	}
	if dot {
		fmt.Fprint(w, top.Physical.DOT(top.Name))
		return nil
	}
	fmt.Fprintf(w, "%s: %d GPUs\n\n", top.Name, top.NumGPUs())
	fmt.Fprintln(w, top.Matrix())
	fmt.Fprintln(w, "Physical link inventory:")
	for _, lt := range topology.AllLinkTypes() {
		if n := top.PhysicalLinkCounts()[lt]; n > 0 {
			fmt.Fprintf(w, "  %-20s x%-3d @ %g GB/s\n", lt.Name(), n, lt.Bandwidth())
		}
	}
	fmt.Fprintln(w, "\nSockets:")
	for i, s := range top.SortedSockets() {
		fmt.Fprintf(w, "  socket %d: %v\n", i, s)
	}
	fmt.Fprintln(w, "\nIdeal aggregate bandwidth per allocation size:")
	for k := 2; k <= 5 && k <= top.NumGPUs(); k++ {
		fmt.Fprintf(w, "  %d GPUs: %g GB/s\n", k, top.IdealAggregate(k))
	}
	return nil
}
