// Fleet scaling benchmarks: template-store build cost and the
// hierarchical decision against the flat path. The headline curves:
// template build time is flat in node count (one class build serves
// 9 or 1,000 nodes), and the warmed hierarchical decision stays
// table-served at any fleet size.
package mapa

import (
	"fmt"
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/effbw"
	"mapa/internal/matchcache"
	"mapa/internal/policy"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// BenchmarkFleetTemplateBuild compares building the full warm set on
// the flattened 9-node machine against the fleet template store at 9,
// 100, and 1,000 nodes. The three template curves should be
// indistinguishable: the build is per node class, not per node.
func BenchmarkFleetTemplateBuild(b *testing.B) {
	shapes := appgraph.AllShapes(4)
	b.Run("flat-9", func(b *testing.B) {
		top := topology.ClusterA100(9)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st := matchcache.NewStore(top, 0)
			st.Warm(4, shapes...)
		}
	})
	for _, nodes := range []int{9, 100, 1000} {
		b.Run(fmt.Sprintf("template-%d", nodes), func(b *testing.B) {
			fleet := topology.NewFleet(topology.DGXA100(), nodes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := matchcache.NewFleetStore(fleet, 0)
				st.Warm(4, shapes...)
			}
		})
	}
}

// BenchmarkHierarchicalDecision compares one warmed ring-3 decision on
// the flat table-served path (9-node flattened machine) against the
// hierarchical template path at 9, 100, and 1,000 nodes, with a few
// GPUs allocated so the accounting does real work.
func BenchmarkHierarchicalDecision(b *testing.B) {
	pattern := appgraph.Ring(3)
	busy := []int{1, 9, 40}
	b.Run("flat-9", func(b *testing.B) {
		top := topology.ClusterA100(9)
		scorer := score.NewScorer(effbw.TrainedFor(top))
		p := policy.NewPreserve(scorer)
		store := matchcache.NewStore(top, 0)
		store.Warm(1, pattern)
		views := store.NewViews()
		views.Allocate(busy)
		avail := top.Graph.Without(busy)
		policy.AttachUniverses(p, store)
		policy.AttachViews(p, views)
		req := policy.Request{Pattern: pattern}
		var buf policy.Allocation
		if err := policy.AllocateInto(p, &buf, avail, top, req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := policy.AllocateInto(p, &buf, avail, top, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, nodes := range []int{9, 100, 1000} {
		b.Run(fmt.Sprintf("template-%d", nodes), func(b *testing.B) {
			fleet := topology.NewFleet(topology.DGXA100(), nodes)
			scorer := score.NewScorer(effbw.PaperModel())
			p := policy.NewPreserve(scorer)
			fstore := matchcache.NewFleetStore(fleet, 0)
			fstore.Warm(1, pattern)
			fviews := fstore.NewFleetViews()
			fviews.Allocate(busy)
			policy.AttachFleet(p, fviews)
			req := policy.Request{Pattern: pattern}
			var buf policy.Allocation
			if served, err := policy.AllocateFleetInto(p, &buf, req); err != nil || !served {
				b.Fatalf("warm decision: served=%v err=%v", served, err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := policy.AllocateFleetInto(p, &buf, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
