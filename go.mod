module mapa

go 1.24
