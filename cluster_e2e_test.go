package mapa

import (
	"fmt"
	"testing"

	"mapa/internal/effbw"
	"mapa/internal/jobs"
	"mapa/internal/policy"
	"mapa/internal/sched"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// clusterTrace runs a small job mix on the 72-GPU cluster under one
// match-pipeline configuration. The candidate cap is tightened because
// candidate sets on a 72-GPU complete hardware graph are combinatorial
// while the score separation is not — this is exactly the regime the
// cap exists for.
func clusterTrace(t *testing.T, jobList []jobs.Job, cached, universes bool) ([]string, *sched.Engine) {
	t.Helper()
	top, err := topology.ByName("cluster-a100")
	if err != nil {
		t.Fatal(err)
	}
	scorer := score.NewScorer(effbw.TrainedFor(top))
	p, err := policy.ByName("preserve", scorer)
	if err != nil {
		t.Fatal(err)
	}
	policy.SetMaxCandidates(p, 400)
	e := sched.NewEngine(top, p)
	e.Mode = sched.ModeFixed
	if !cached {
		e.Cache = nil
	}
	if !universes {
		e.Universes = nil
	}
	res, err := e.Run(jobList)
	if err != nil {
		t.Fatal(err)
	}
	trace := make([]string, len(res.Records))
	for i, r := range res.Records {
		trace[i] = fmt.Sprintf("job=%d gpus=%v agg=%.6f pres=%.6f", r.Job.ID, r.GPUs, r.AggBW, r.PreservedBW)
	}
	return trace, e
}

// TestClusterEndToEndMultiWordParity is the multi-node end-to-end
// check: on a >64-GPU machine — availability masks, universe bitsets,
// and cache keys all spanning multiple uint64 words — the two-tier
// pipeline must replay the sequential allocation trace byte for byte,
// with misses actually served by mask filtering.
func TestClusterEndToEndMultiWordParity(t *testing.T) {
	jobList, err := jobs.Generate(jobs.GenerateConfig{N: 10, MaxGPUs: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sequential, _ := clusterTrace(t, jobList, false, false)
	twoTier, e := clusterTrace(t, jobList, true, true)
	if len(twoTier) != len(sequential) {
		t.Fatalf("two-tier run produced %d records, sequential %d", len(twoTier), len(sequential))
	}
	for i := range sequential {
		if twoTier[i] != sequential[i] {
			t.Fatalf("two-tier diverged at record %d:\n  seq: %s\n  got: %s", i, sequential[i], twoTier[i])
		}
	}
	if st := e.Universes.Stats(); st.Universes == 0 || st.FilterServed == 0 {
		t.Fatalf("cluster run was not filter-served: %+v", st)
	}
}
