package mapa

import (
	"fmt"
	"testing"

	"mapa/internal/effbw"
	"mapa/internal/jobs"
	"mapa/internal/policy"
	"mapa/internal/sched"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// clusterTrace runs a small job mix on the 72-GPU cluster under one
// match-pipeline configuration. The candidate cap is tightened because
// candidate sets on a 72-GPU complete hardware graph are combinatorial
// while the score separation is not — this is exactly the regime the
// cap exists for.
func clusterTrace(t *testing.T, jobList []jobs.Job, cached, universes, liveviews bool) ([]string, *sched.Engine) {
	t.Helper()
	top, err := topology.ByName("cluster-a100")
	if err != nil {
		t.Fatal(err)
	}
	scorer := score.NewScorer(effbw.TrainedFor(top))
	p, err := policy.ByName("preserve", scorer)
	if err != nil {
		t.Fatal(err)
	}
	policy.SetMaxCandidates(p, 400)
	e := sched.NewEngine(top, p)
	e.Mode = sched.ModeFixed
	e.DisableLiveViews = !liveviews
	if !cached {
		e.Cache = nil
	}
	if !universes {
		e.Universes = nil
	}
	res, err := e.Run(jobList)
	if err != nil {
		t.Fatal(err)
	}
	trace := make([]string, len(res.Records))
	for i, r := range res.Records {
		trace[i] = fmt.Sprintf("job=%d gpus=%v agg=%.6f pres=%.6f", r.Job.ID, r.GPUs, r.AggBW, r.PreservedBW)
	}
	return trace, e
}

// TestClusterEndToEndMultiWordParity is the multi-node end-to-end
// check: on a >64-GPU machine — availability masks, universe bitsets,
// and cache keys all spanning multiple uint64 words — the two-tier
// pipeline must replay the sequential allocation trace byte for byte,
// with misses actually served by mask filtering.
func TestClusterEndToEndMultiWordParity(t *testing.T) {
	jobList, err := jobs.Generate(jobs.GenerateConfig{N: 10, MaxGPUs: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sequential, _ := clusterTrace(t, jobList, false, false, false)
	compare := func(name string, got []string) {
		t.Helper()
		if len(got) != len(sequential) {
			t.Fatalf("%s run produced %d records, sequential %d", name, len(got), len(sequential))
		}
		for i := range sequential {
			if got[i] != sequential[i] {
				t.Fatalf("%s diverged at record %d:\n  seq: %s\n  got: %s", name, i, sequential[i], got[i])
			}
		}
	}
	filtered, fe := clusterTrace(t, jobList, true, true, false)
	compare("two-tier (no views)", filtered)
	if st := fe.Universes.Stats(); st.Universes == 0 || st.FilterServed == 0 {
		t.Fatalf("cluster run was not filter-served: %+v", st)
	}
	viewed, ve := clusterTrace(t, jobList, true, true, true)
	compare("live-view pipeline", viewed)
	if vs := ve.Views.Stats(); vs.Served == 0 {
		t.Fatalf("cluster run was not view-served: %+v", vs)
	}
}
