package mapa

import (
	"fmt"
	"math/rand"
	"testing"

	"mapa/internal/match"
)

// twinSystems builds the fast/slow pair every parity suite drives: one
// System running the full warmed pipeline, one stripped to plain
// per-decision searches — the rebuild-from-scratch oracle.
func twinSystems(t *testing.T, topo string) (fast, slow *System) {
	t.Helper()
	fast, err := NewSystem(topo, "preserve", WithWarmShapes(4))
	if err != nil {
		t.Fatal(err)
	}
	slow, err = NewSystem(topo, "preserve", WithoutCache(), WithoutUniverses())
	if err != nil {
		t.Fatal(err)
	}
	return fast, slow
}

// leasePair tracks one job's lease on both twins.
type leasePair struct{ fast, slow *Lease }

// allocateBoth places the same request on both twins and fails the
// test on any decision divergence — GPU set or any score.
func allocateBoth(t *testing.T, fast, slow *System, req JobRequest, step int) leasePair {
	t.Helper()
	lf, err := fast.Allocate(req)
	if err != nil {
		t.Fatalf("step %d: pipelined allocate: %v", step, err)
	}
	ls, err := slow.Allocate(req)
	if err != nil {
		t.Fatalf("step %d: plain allocate: %v", step, err)
	}
	if fmt.Sprint(lf.GPUs) != fmt.Sprint(ls.GPUs) ||
		lf.EffBW != ls.EffBW || lf.AggBW != ls.AggBW || lf.PreservedBW != ls.PreservedBW {
		t.Fatalf("step %d (%+v): pipelined decision diverged:\n got gpus=%v eff=%v agg=%v pres=%v\nwant gpus=%v eff=%v agg=%v pres=%v",
			step, req, lf.GPUs, lf.EffBW, lf.AggBW, lf.PreservedBW, ls.GPUs, ls.EffBW, ls.AggBW, ls.PreservedBW)
	}
	return leasePair{lf, ls}
}

// assertChurnWasTableServed pins the cost model of a fault-churn run:
// every miss decision came from the delta-maintained live views and
// their score tables, never a universe scan.
func assertChurnWasTableServed(t *testing.T, s *System) {
	t.Helper()
	st := s.CacheStats()
	if st.ViewServed == 0 || st.LiveViews == 0 {
		t.Fatalf("churn was not served by live views: %+v", st)
	}
	if st.TableServed != st.ViewServed || st.ScoreTables == 0 {
		t.Fatalf("churn was not table-served (%d of %d view-served): %+v", st.TableServed, st.ViewServed, st)
	}
	if st.FilterServed != 0 {
		t.Fatalf("churn fell back to %d full-universe scans: %+v", st.FilterServed, st)
	}
	if st.ViewRejected != 0 {
		t.Fatalf("live views rejected %d decisions mid-churn: %+v", st.ViewRejected, st)
	}
}

// TestSystemFaultChurnParity drives twin Systems through a 500-step
// interleaving of allocations, releases, device failures, and
// recoveries: the warmed pipeline (health masks on posting lists,
// table-served selection) against plain per-decision searches over the
// rebuilt availability graph. Every decision must be byte-identical,
// the induced-subgraph invariant must hold throughout, and at the end
// the churn must have been table-served — health events are O(posting
// list) deltas, not rebuilds.
func TestSystemFaultChurnParity(t *testing.T) {
	fast, slow := twinSystems(t, "dgx-a100")
	rng := rand.New(rand.NewSource(4242))
	shapes := []string{"Ring", "Chain", "Star", "AllToAll"}
	var live []leasePair
	var down []int
	faults := 0
	for step := 0; step < 500; step++ {
		free := len(fast.FreeGPUs())
		op := rng.Intn(10)
		switch {
		case op < 3 && len(live) > 0, free == 0 && len(live) > 0:
			i := rng.Intn(len(live))
			if err := fast.Release(live[i].fast); err != nil {
				t.Fatalf("step %d: pipelined release: %v", step, err)
			}
			if err := slow.Release(live[i].slow); err != nil {
				t.Fatalf("step %d: plain release: %v", step, err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			checkAvailInvariant(t, fast, fmt.Sprintf("step %d release", step))
		case op == 3 && free > 1:
			// Fail a random free device on both twins.
			gs := fast.FreeGPUs()
			g := gs[rng.Intn(len(gs))]
			if err := fast.MarkUnhealthy(g); err != nil {
				t.Fatalf("step %d: pipelined MarkUnhealthy(%d): %v", step, g, err)
			}
			if err := slow.MarkUnhealthy(g); err != nil {
				t.Fatalf("step %d: plain MarkUnhealthy(%d): %v", step, g, err)
			}
			down = append(down, g)
			faults++
			checkAvailInvariant(t, fast, fmt.Sprintf("step %d fault", step))
		case op == 4 && len(down) > 0:
			i := rng.Intn(len(down))
			g := down[i]
			if err := fast.Restore(g); err != nil {
				t.Fatalf("step %d: pipelined Restore(%d): %v", step, g, err)
			}
			if err := slow.Restore(g); err != nil {
				t.Fatalf("step %d: plain Restore(%d): %v", step, g, err)
			}
			down[i] = down[len(down)-1]
			down = down[:len(down)-1]
			checkAvailInvariant(t, fast, fmt.Sprintf("step %d recovery", step))
		default:
			if free == 0 {
				continue
			}
			maxK := 3
			if free < maxK {
				maxK = free
			}
			req := JobRequest{
				NumGPUs:   1 + rng.Intn(maxK),
				Shape:     shapes[rng.Intn(len(shapes))],
				Sensitive: rng.Intn(2) == 0,
			}
			live = append(live, allocateBoth(t, fast, slow, req, step))
			checkAvailInvariant(t, fast, fmt.Sprintf("step %d allocate", step))
		}
		if fmt.Sprint(fast.UnhealthyGPUs()) != fmt.Sprint(slow.UnhealthyGPUs()) {
			t.Fatalf("step %d: twin health state diverged: %v vs %v", step, fast.UnhealthyGPUs(), slow.UnhealthyGPUs())
		}
	}
	if faults < 10 {
		t.Fatalf("churn injected only %d faults; the suite must exercise health events", faults)
	}
	assertChurnWasTableServed(t, fast)
}

// TestSystemHealthChurnZeroSearches is the fast-side cost pin: across a
// post-warm fault/recovery churn, the warmed System must run zero
// subgraph-isomorphism searches and zero universe filter scans — the
// process-global matcher counters stand still while decisions flow.
func TestSystemHealthChurnZeroSearches(t *testing.T) {
	s, err := NewSystem("dgx-a100", "preserve", WithWarmShapes(4))
	if err != nil {
		t.Fatal(err)
	}
	s.WaitWarm() // the warm itself searches; snapshot counters after it
	rng := rand.New(rand.NewSource(777))
	shapes := []string{"Ring", "Chain", "Star", "AllToAll"}
	// The singleton pattern is not part of the warm set — its universe
	// is built lazily on the first 1-GPU request. Prime it once per
	// shape so the churn below measures steady state.
	for _, shape := range shapes {
		l, err := s.Allocate(JobRequest{NumGPUs: 1, Shape: shape})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Release(l); err != nil {
			t.Fatal(err)
		}
	}
	searches0, filters0 := match.Searches(), match.Filters()
	var live []*Lease
	decisions := 0
	for step := 0; step < 300; step++ {
		free := len(s.FreeGPUs())
		switch op := rng.Intn(8); {
		case op < 3 && len(live) > 0, free == 0 && len(live) > 0:
			i := rng.Intn(len(live))
			if err := s.Release(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		case op == 3 && free > 1:
			gs := s.FreeGPUs()
			g := gs[rng.Intn(len(gs))]
			if err := s.MarkUnhealthy(g); err != nil {
				t.Fatal(err)
			}
			if err := s.Restore(g); err != nil {
				t.Fatal(err)
			}
		default:
			if free == 0 {
				continue
			}
			maxK := 3
			if free < maxK {
				maxK = free
			}
			req := JobRequest{NumGPUs: 1 + rng.Intn(maxK), Shape: shapes[rng.Intn(len(shapes))], Sensitive: rng.Intn(2) == 0}
			l, err := s.Allocate(req)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			live = append(live, l)
			decisions++
		}
	}
	if decisions == 0 {
		t.Fatal("churn made no decisions")
	}
	if ds := match.Searches() - searches0; ds != 0 {
		t.Fatalf("post-warm fault churn ran %d subgraph searches, want 0", ds)
	}
	if df := match.Filters() - filters0; df != 0 {
		t.Fatalf("post-warm fault churn ran %d universe filter scans, want 0", df)
	}
}

// TestSystemDegradeLinkParity degrades (and partially recovers) machine
// links mid-churn on both twins: the fast side repairs its warmed
// tables and bandwidth accounting in place, the slow side recomputes
// everything per decision from the mutated graph — decisions must stay
// byte-identical, and the fast side must have repaired, not rebuilt.
func TestSystemDegradeLinkParity(t *testing.T) {
	fast, slow := twinSystems(t, "dgx-a100")
	rng := rand.New(rand.NewSource(99))
	shapes := []string{"Ring", "Chain", "Star", "AllToAll"}
	degradations := []struct {
		u, v int
		bw   float64
	}{
		{0, 3, 10},
		{2, 7, 5},
		{0, 3, 100}, // partial recovery of the first link
	}
	var live []leasePair
	di := 0
	for step := 0; step < 240; step++ {
		free := len(fast.FreeGPUs())
		switch {
		case step%80 == 40 && di < len(degradations):
			d := degradations[di]
			di++
			if err := fast.DegradeLink(d.u, d.v, d.bw); err != nil {
				t.Fatalf("step %d: pipelined DegradeLink%+v: %v", step, d, err)
			}
			if err := slow.DegradeLink(d.u, d.v, d.bw); err != nil {
				t.Fatalf("step %d: plain DegradeLink%+v: %v", step, d, err)
			}
			checkAvailInvariant(t, fast, fmt.Sprintf("step %d degrade", step))
		case (rng.Intn(2) == 0 && len(live) > 0) || free < 2:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			if err := fast.Release(live[i].fast); err != nil {
				t.Fatal(err)
			}
			if err := slow.Release(live[i].slow); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			checkAvailInvariant(t, fast, fmt.Sprintf("step %d release", step))
		default:
			maxK := 3
			if free < maxK {
				maxK = free
			}
			req := JobRequest{NumGPUs: 1 + rng.Intn(maxK), Shape: shapes[rng.Intn(len(shapes))], Sensitive: rng.Intn(2) == 0}
			live = append(live, allocateBoth(t, fast, slow, req, step))
			checkAvailInvariant(t, fast, fmt.Sprintf("step %d allocate", step))
		}
	}
	if di != len(degradations) {
		t.Fatalf("only %d of %d degradation events fired", di, len(degradations))
	}
	st := fast.CacheStats()
	if st.Repairs != len(degradations) || st.RepairedCandidates == 0 {
		t.Fatalf("degradations were not absorbed by incremental repair: %+v", st)
	}
	if st.FilterServed != 0 || st.ViewRejected != 0 {
		t.Fatalf("degradation churn fell off the live path: %+v", st)
	}
}

// TestSystemRepartitionParity folds MIG repartitioning in as a live
// topology mutation: both twins re-cut the same GPUs mid-churn (leases
// surviving on unchanged instances), decisions stay byte-identical on
// the virtual machine, and a second repartition proves virtual IDs are
// fresh and deterministic.
func TestSystemRepartitionParity(t *testing.T) {
	fast, slow := twinSystems(t, "dgx-v100")
	rng := rand.New(rand.NewSource(1234))
	shapes := []string{"Ring", "Chain", "Star", "AllToAll"}
	var live []leasePair

	// Occupy part of the machine so leases straddle the repartition.
	live = append(live, allocateBoth(t, fast, slow, JobRequest{NumGPUs: 3, Shape: "Ring", Sensitive: true}, -1))

	repartitions := []map[int]int{
		{7: 2},       // split GPU 7
		{6: 3},       // split GPU 6, GPU 7 keeps its slices
		{7: 1, 6: 3}, // merge GPU 7 back; 6 unchanged (no-op for it)
	}
	ri := 0
	for step := 0; step < 360; step++ {
		free := len(fast.FreeGPUs())
		switch {
		case step%120 == 60 && ri < len(repartitions):
			slices := repartitions[ri]
			ri++
			// Drain any lease touching the GPUs being re-cut.
			for i := 0; i < len(live); {
				touches := false
				for _, g := range live[i].fast.GPUs {
					for phys := range slices {
						for _, vid := range fast.Instances(phys) {
							if g == vid {
								touches = true
							}
						}
					}
				}
				if !touches {
					i++
					continue
				}
				if err := fast.Release(live[i].fast); err != nil {
					t.Fatal(err)
				}
				if err := slow.Release(live[i].slow); err != nil {
					t.Fatal(err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if err := fast.Repartition(slices); err != nil {
				t.Fatalf("step %d: pipelined Repartition(%v): %v", step, slices, err)
			}
			if err := slow.Repartition(slices); err != nil {
				t.Fatalf("step %d: plain Repartition(%v): %v", step, slices, err)
			}
			if fast.NumGPUs() != slow.NumGPUs() {
				t.Fatalf("step %d: twin machines diverged: %d vs %d GPUs", step, fast.NumGPUs(), slow.NumGPUs())
			}
			if fmt.Sprint(fast.FreeGPUs()) != fmt.Sprint(slow.FreeGPUs()) {
				t.Fatalf("step %d: free sets diverged after repartition:\n fast %v\n slow %v", step, fast.FreeGPUs(), slow.FreeGPUs())
			}
			checkAvailInvariant(t, fast, fmt.Sprintf("step %d repartition", step))
		case (rng.Intn(2) == 0 && len(live) > 1) || free < 2:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			if err := fast.Release(live[i].fast); err != nil {
				t.Fatal(err)
			}
			if err := slow.Release(live[i].slow); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			checkAvailInvariant(t, fast, fmt.Sprintf("step %d release", step))
		default:
			maxK := 3
			if free < maxK {
				maxK = free
			}
			req := JobRequest{NumGPUs: 1 + rng.Intn(maxK), Shape: shapes[rng.Intn(len(shapes))], Sensitive: rng.Intn(2) == 0}
			live = append(live, allocateBoth(t, fast, slow, req, step))
			checkAvailInvariant(t, fast, fmt.Sprintf("step %d allocate", step))
		}
	}
	if ri != len(repartitions) {
		t.Fatalf("only %d of %d repartitions fired", ri, len(repartitions))
	}
	// Deterministic fresh IDs: capacity was 8, so GPU 7 first took
	// {8,9}, GPU 6 took {10,11,12}, and the merged GPU 7 took {13}.
	if got := fmt.Sprint(fast.Instances(6)); got != "[10 11 12]" {
		t.Fatalf("Instances(6) = %s, want [10 11 12]", got)
	}
	if got := fmt.Sprint(fast.Instances(7)); got != "[13]" {
		t.Fatalf("Instances(7) = %s, want [13]", got)
	}
	if f := fast.InstanceFraction(11); f != 1.0/3 {
		t.Fatalf("InstanceFraction(11) = %v, want 1/3", f)
	}
}

// TestSystemMarkUnhealthyLeased pins the leased-device semantics: a GPU
// failing under a live lease stays out of the free pool on release
// until restored, and restoring it mid-lease makes it rejoin on
// release.
func TestSystemMarkUnhealthyLeased(t *testing.T) {
	s, err := NewSystem("dgx-v100", "preserve", WithWarmShapes(3))
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Allocate(JobRequest{NumGPUs: 2, Shape: "Ring"})
	if err != nil {
		t.Fatal(err)
	}
	victim := l.GPUs[0]
	if err := s.MarkUnhealthy(victim); err != nil {
		t.Fatal(err)
	}
	if got := len(s.FreeGPUs()); got != 6 {
		t.Fatalf("marking a leased GPU changed the free pool: %d free, want 6", got)
	}
	if err := s.Release(l); err != nil {
		t.Fatal(err)
	}
	checkAvailInvariant(t, s, "release with unhealthy member")
	if got := len(s.FreeGPUs()); got != 7 {
		t.Fatalf("unhealthy GPU rejoined on release: %d free, want 7", got)
	}
	if err := s.Restore(victim); err != nil {
		t.Fatal(err)
	}
	checkAvailInvariant(t, s, "restore after release")
	if got := len(s.FreeGPUs()); got != 8 {
		t.Fatalf("restored GPU missing from free pool: %d free, want 8", got)
	}
	// The pipeline stayed live through the whole exchange.
	l2, err := s.Allocate(JobRequest{NumGPUs: 3, Shape: "Ring", Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(l2); err != nil {
		t.Fatal(err)
	}
}

// TestSystemFailedMutationsLeaveStateIdentical is the failed-mutation
// invariant suite: every erroring mutation — bad allocate, bad release,
// bad health event, bad degradation, bad repartition — must leave the
// System byte-identical to its pre-call state, proven twin-style: the
// control System never sees the erroring calls, and both must keep
// deciding identically afterwards.
func TestSystemFailedMutationsLeaveStateIdentical(t *testing.T) {
	subject, err := NewSystem("dgx-v100", "preserve", WithWarmShapes(4))
	if err != nil {
		t.Fatal(err)
	}
	control, err := NewSystem("dgx-v100", "preserve", WithWarmShapes(4))
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ subject, control *Lease }
	var live []pair
	alloc := func(req JobRequest, step string) {
		t.Helper()
		ls, err := subject.Allocate(req)
		if err != nil {
			t.Fatalf("%s: subject allocate: %v", step, err)
		}
		lc, err := control.Allocate(req)
		if err != nil {
			t.Fatalf("%s: control allocate: %v", step, err)
		}
		if fmt.Sprint(ls.GPUs) != fmt.Sprint(lc.GPUs) || ls.EffBW != lc.EffBW || ls.PreservedBW != lc.PreservedBW {
			t.Fatalf("%s: decisions diverged after failed mutations: %v vs %v", step, ls.GPUs, lc.GPUs)
		}
		live = append(live, pair{ls, lc})
	}
	same := func(step string) {
		t.Helper()
		if fmt.Sprint(subject.FreeGPUs()) != fmt.Sprint(control.FreeGPUs()) {
			t.Fatalf("%s: free sets diverged:\n subject %v\n control %v", step, subject.FreeGPUs(), control.FreeGPUs())
		}
		if fmt.Sprint(subject.UnhealthyGPUs()) != fmt.Sprint(control.UnhealthyGPUs()) {
			t.Fatalf("%s: health state diverged", step)
		}
		checkAvailInvariant(t, subject, step)
	}

	alloc(JobRequest{NumGPUs: 3, Shape: "Ring", Sensitive: true}, "setup")
	if err := subject.MarkUnhealthy(7); err != nil {
		t.Fatal(err)
	}
	if err := control.MarkUnhealthy(7); err != nil {
		t.Fatal(err)
	}
	same("setup")

	// Every erroring mutation hits only the subject.
	failures := []struct {
		name string
		call func() error
	}{
		{"oversized allocate", func() error {
			_, err := subject.Allocate(JobRequest{NumGPUs: 6, Shape: "Ring"})
			return err
		}},
		{"unknown shape", func() error {
			_, err := subject.Allocate(JobRequest{NumGPUs: 2, Shape: "Moebius"})
			return err
		}},
		{"nil release", func() error { return subject.Release(nil) }},
		{"unknown lease", func() error { return subject.Release(&Lease{ID: 999}) }},
		{"unknown GPU unhealthy", func() error { return subject.MarkUnhealthy(42) }},
		{"double unhealthy", func() error { return subject.MarkUnhealthy(7) }},
		{"duplicate in one event", func() error { return subject.MarkUnhealthy(1, 1) }},
		{"restore healthy GPU", func() error { return subject.Restore(0) }},
		{"atomic batch: one bad member", func() error { return subject.MarkUnhealthy(1, 7) }},
		{"degrade missing link", func() error { return subject.DegradeLink(0, 99, 5) }},
		{"degrade negative bw", func() error { return subject.DegradeLink(0, 1, -3) }},
		{"repartition unknown GPU", func() error { return subject.Repartition(map[int]int{42: 2}) }},
		{"repartition out of range", func() error { return subject.Repartition(map[int]int{0: 9}) }},
		{"repartition leased GPU", func() error {
			return subject.Repartition(map[int]int{live[0].subject.GPUs[0]: 2})
		}},
		{"repartition unhealthy GPU", func() error { return subject.Repartition(map[int]int{7: 2}) }},
	}
	for _, f := range failures {
		if err := f.call(); err == nil {
			t.Fatalf("%s: mutation unexpectedly succeeded", f.name)
		}
		same(f.name)
	}

	// The twins must still agree on fresh decisions and a full drain.
	alloc(JobRequest{NumGPUs: 2, Shape: "Chain"}, "post-failure allocate")
	for _, p := range live {
		if err := subject.Release(p.subject); err != nil {
			t.Fatal(err)
		}
		if err := control.Release(p.control); err != nil {
			t.Fatal(err)
		}
	}
	same("post-failure drain")
}

// TestSystemReleaseFailureInjection proves Release's two-phase
// atomicity directly: with a corrupted topology edge, Release must
// error without mutating anything — under the old single-pass
// implementation the first GPUs of the lease had already rejoined the
// free pool when the error fired.
func TestSystemReleaseFailureInjection(t *testing.T) {
	s, err := NewSystem("dgx-v100", "preserve", WithoutCache(), WithoutUniverses())
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Allocate(JobRequest{NumGPUs: 3, Shape: "Ring", Sensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	freeBefore := fmt.Sprint(s.FreeGPUs())

	// White-box corruption: remove a topology edge between the LAST
	// released GPU and a free vertex, so a non-atomic release would
	// mutate before failing.
	last := l.GPUs[len(l.GPUs)-1]
	var freeV int
	for _, v := range s.FreeGPUs() {
		freeV = v
	}
	s.mu.Lock()
	e, ok := s.top.Graph.EdgeBetween(last, freeV)
	if !ok {
		s.mu.Unlock()
		t.Fatalf("no edge (%d,%d) to corrupt", last, freeV)
	}
	s.top.Graph.RemoveEdge(last, freeV)
	s.mu.Unlock()

	if err := s.Release(l); err == nil {
		t.Fatal("release over a corrupted topology succeeded")
	}
	if got := fmt.Sprint(s.FreeGPUs()); got != freeBefore {
		t.Fatalf("failed release mutated the free pool:\n before %s\n after  %s", freeBefore, got)
	}
	checkAvailInvariant(t, s, "after failed release")

	// Repair the topology; the lease must still be intact and fully
	// releasable — no partial lease-table damage either.
	s.mu.Lock()
	s.top.Graph.MustAddEdge(last, freeV, e.Weight, e.Label)
	s.mu.Unlock()
	if err := s.Release(l); err != nil {
		t.Fatalf("release after repair: %v", err)
	}
	checkAvailInvariant(t, s, "after repaired release")
	if got := len(s.FreeGPUs()); got != s.NumGPUs() {
		t.Fatalf("drained system has %d free GPUs, want %d", got, s.NumGPUs())
	}
}
