// Allocation-discipline regression gates: the table-served decision
// path must stay 0 allocs/op, and the tier-0 live-view delta path must
// stay within a small fixed budget. These are tests, not benchmarks —
// a regression fails CI outright instead of silently shifting a curve.
package mapa

import (
	"fmt"
	"testing"

	"mapa/internal/appgraph"
	"mapa/internal/effbw"
	"mapa/internal/matchcache"
	"mapa/internal/policy"
	"mapa/internal/score"
	"mapa/internal/topology"
)

// allocPolicies builds the four MAPA selection-order variants — all
// four table-served strategies (fully static order, EffBW-primary
// group, PreservedBW-primary streaming argmax, AggBW-primary group).
func allocPolicies(scorer *score.Scorer) []struct {
	name      string
	p         policy.Allocator
	sensitive bool
} {
	return []struct {
		name      string
		p         policy.Allocator
		sensitive bool
	}{
		{"greedy", policy.NewGreedy(scorer), true},
		{"preserve-sensitive", policy.NewPreserve(scorer), true},
		{"preserve-insensitive", policy.NewPreserve(scorer), false},
		{"preserve-aggbw-sensitive", policy.NewPreserveAggBW(scorer), true},
	}
}

// TestTableServedDecisionZeroAllocs pins the post-warm table-served
// decision at exactly 0 allocs/op for all four policies on both the
// single-node DGX-A100 and the 72-GPU cluster. The decision runs
// through AllocateInto with a reused result buffer — the serving-loop
// discipline — so any regression (an escaping closure, a method value,
// a fresh slice on the hot path) fails here, not in a benchmark graph.
func TestTableServedDecisionZeroAllocs(t *testing.T) {
	tops := []struct {
		name string
		top  *topology.Topology
		busy []int
	}{
		{"dgx-a100", topology.DGXA100(), []int{1}},
		{"cluster-a100", topology.ClusterA100(9), []int{1, 6}},
	}
	pattern := appgraph.Ring(3)
	for _, tc := range tops {
		t.Run(tc.name, func(t *testing.T) {
			scorer := score.NewScorer(effbw.TrainedFor(tc.top))
			store := matchcache.NewStore(tc.top, 0)
			store.Warm(1, pattern)
			views := store.NewViews()
			views.Allocate(tc.busy)
			avail := tc.top.Graph.Without(tc.busy)
			for _, v := range allocPolicies(scorer) {
				t.Run(v.name, func(t *testing.T) {
					policy.AttachUniverses(v.p, store)
					policy.AttachViews(v.p, views)
					req := policy.Request{Pattern: pattern, Sensitive: v.sensitive}
					var buf policy.Allocation
					// Warm the per-(table, model) sorted orders and every
					// lazy memo, and prove the fast path actually serves:
					// a decision that fell through to an entry tier would
					// trivially allocate and mask a fast-path regression.
					evals := score.Evaluations()
					if err := policy.AllocateInto(v.p, &buf, avail, tc.top, req); err != nil {
						t.Fatal(err)
					}
					if d := score.Evaluations() - evals; d != 0 {
						t.Fatalf("decision ran %d dynamic score evaluations, want 0 (not table-served)", d)
					}
					got := testing.AllocsPerRun(100, func() {
						if err := policy.AllocateInto(v.p, &buf, avail, tc.top, req); err != nil {
							t.Fatal(err)
						}
					})
					if got != 0 {
						t.Fatalf("table-served decision: %v allocs/op, want 0", got)
					}
				})
			}
		})
	}
}

// TestLiveViewDeltaAllocBudget caps the tier-0 delta path: publishing
// an allocate/release GPU-set delta to a warmed view set walks posting
// lists and updates counters in place, so it must stay within a small
// fixed budget per delta pair (0 today; the cap leaves headroom for
// bounded bookkeeping, not per-candidate work).
func TestLiveViewDeltaAllocBudget(t *testing.T) {
	const budget = 4.0
	top := topology.ClusterA100(9)
	pattern := appgraph.Ring(3)
	store := matchcache.NewStore(top, 0)
	store.Warm(1, pattern)
	views := store.NewViews()
	scorer := score.NewScorer(effbw.TrainedFor(top))
	p := policy.NewPreserve(scorer)
	policy.AttachUniverses(p, store)
	policy.AttachViews(p, views)
	// One decision materializes the view slot so deltas do real work.
	req := policy.Request{Pattern: pattern, Sensitive: false}
	var buf policy.Allocation
	if err := policy.AllocateInto(p, &buf, top.Graph, top, req); err != nil {
		t.Fatal(err)
	}
	gpus := []int{3, 10, 40}
	got := testing.AllocsPerRun(100, func() {
		views.Allocate(gpus)
		views.Release(gpus)
	})
	if got > budget {
		t.Fatalf("live-view allocate+release delta: %v allocs/op, budget %v", got, budget)
	}
}

// TestAllocateIntoMatchesAllocate cross-checks the buffer-reuse entry
// point against the allocating one on a churned state: same GPUs, same
// scores, same match, decision after decision, for every policy — the
// byte-identity contract AllocateInto must uphold while reusing buf.
func TestAllocateIntoMatchesAllocate(t *testing.T) {
	top := topology.ClusterA100(3)
	pattern := appgraph.Ring(3)
	scorer := score.NewScorer(effbw.TrainedFor(top))
	for _, v := range allocPolicies(scorer) {
		t.Run(v.name, func(t *testing.T) {
			store := matchcache.NewStore(top, 0)
			store.Warm(1, pattern)
			viewsA := store.NewViews()
			viewsB := store.NewViews()
			pa := v.p
			pb, err := policy.ByName(pa.Name(), scorer)
			if err != nil {
				t.Fatal(err)
			}
			policy.AttachUniverses(pa, store)
			policy.AttachViews(pa, viewsA)
			policy.AttachUniverses(pb, store)
			policy.AttachViews(pb, viewsB)
			req := policy.Request{Pattern: pattern, Sensitive: v.sensitive}
			avail := top.Graph.Clone()
			var buf policy.Allocation
			for step := 0; step < 8; step++ {
				want, errA := pa.Allocate(avail, top, req)
				errB := policy.AllocateInto(pb, &buf, avail, top, req)
				if (errA != nil) != (errB != nil) {
					t.Fatalf("step %d: Allocate err=%v, AllocateInto err=%v", step, errA, errB)
				}
				if errA != nil {
					break
				}
				if fmt.Sprint(want.GPUs) != fmt.Sprint(buf.GPUs) ||
					want.Scores != buf.Scores ||
					fmt.Sprint(want.Match) != fmt.Sprint(buf.Match) {
					t.Fatalf("step %d: AllocateInto diverged:\n got %v %+v\nwant %v %+v",
						step, buf.GPUs, buf.Scores, want.GPUs, want.Scores)
				}
				viewsA.Allocate(want.GPUs)
				viewsB.Allocate(want.GPUs)
				for _, g := range want.GPUs {
					avail.RemoveVertex(g)
				}
			}
		})
	}
}
